"""The full stack: fingerprint spoofing x interaction humanisation.

The paper's two contributions address two different detection layers; a
measurement study needs both.  This bench crawls a mixed population --
sites checking fingerprints, sites watching interaction, sites doing
both -- with the four crawler configurations, and reports the fraction
of sites that serve the crawler differently than they would a human.
"""

import numpy as np
from conftest import print_table

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.crawl.behavioral import BehavioralSite
from repro.detection.base import DetectionLevel
from repro.detection.fingerprint import probe_webdriver_flag, run_all_probes
from repro.experiment import BrowsingScenario, HLISAAgent, SeleniumAgent
from repro.spoofing import SpoofingExtension

N_FINGERPRINT_SITES = 6
N_BEHAVIORAL_SITES = 6
N_BOTH_SITES = 4


def build_population():
    population = []
    for i in range(N_FINGERPRINT_SITES):
        population.append(("fingerprint", None))
    levels = [DetectionLevel.ARTIFICIAL, DetectionLevel.DEVIATION]
    for i in range(N_BEHAVIORAL_SITES):
        population.append(
            ("behavioral", BehavioralSite(f"b{i}.example", levels[i % 2]))
        )
    for i in range(N_BOTH_SITES):
        population.append(("both", BehavioralSite(f"x{i}.example", levels[i % 2])))
    return population


def crawl(population, spoofed: bool, humanised: bool):
    """Visit every site once; return the fraction that detected the bot."""
    # One interaction recording per configuration (the crawler interacts
    # the same way everywhere); fingerprints are probed per "visit".
    agent = HLISAAgent(seed=11) if humanised else SeleniumAgent()
    recorder = BrowsingScenario(clicks=30).run(agent).recorder

    detected = 0
    for kind, behavioral in population:
        window = Window(profile=NavigatorProfile(webdriver=True))
        if spoofed:
            SpoofingExtension().inject(window)
        fingerprint_hit = probe_webdriver_flag(window) is True
        behavioral_hit = behavioral.judges(recorder) if behavioral else False
        if kind == "fingerprint":
            detected += fingerprint_hit
        elif kind == "behavioral":
            detected += behavioral_hit
        else:  # both: either check suffices
            detected += fingerprint_hit or behavioral_hit
    return detected / len(population)


def test_fullstack_crawl(benchmark):
    def run_matrix():
        population = build_population()
        return {
            "bare Selenium": crawl(population, False, False),
            "+ spoofing": crawl(population, True, False),
            "+ HLISA": crawl(population, False, True),
            "+ both": crawl(population, True, True),
        }

    rates = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = [f"{'crawler configuration':22s} {'sites detecting it':>19s}"]
    for config, rate in rates.items():
        lines.append(f"{config:22s} {rate:>18.0%}")
    lines.append("")
    lines.append(
        f"population: {N_FINGERPRINT_SITES} fingerprint-checking, "
        f"{N_BEHAVIORAL_SITES} interaction-watching, {N_BOTH_SITES} both"
    )
    print_table("Full-stack crawl: both defences are needed", lines)

    assert rates["bare Selenium"] == 1.0
    # Each single fix only clears its own layer.
    assert 0.0 < rates["+ spoofing"] < rates["bare Selenium"]
    assert 0.0 < rates["+ HLISA"] < rates["bare Selenium"]
    # Both together clear everything.
    assert rates["+ both"] == 0.0
