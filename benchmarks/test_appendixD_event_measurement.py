"""Appendix D: measuring Selenium's interaction through the event API.

Reproduced findings:

- the taxonomy and its covering set (Appendix C/D);
- keyboard event granularity of 1 ms;
- the double-click interval: 500 ms default environment, 600 ms under
  Selenium;
- programmatic scrolling lacks wheel events and covers arbitrary
  distances, while wheel scrolling moves a fixed 57 px per tick;
- minimising fires visibilitychange after which interaction should stop.
"""

from conftest import print_table

from repro.browser.input_pipeline import (
    DEFAULT_DOUBLE_CLICK_INTERVAL_MS,
    SELENIUM_DOUBLE_CLICK_INTERVAL_MS,
    WHEEL_TICK_PX,
)
from repro.clock import VirtualClock
from repro.events.taxonomy import (
    ALL_INTERACTION_EVENTS,
    COVERING_SET,
    COVERING_SET_EVENTS,
    DOCUMENT_EVENTS,
    ELEMENT_EVENTS,
    WINDOW_EVENTS,
)
from repro.experiment import ScrollTask, SeleniumAgent, HumanAgent
from repro.analysis import scroll_metrics


def measure_environment():
    selenium_scroll = ScrollTask(page_height=5000).run(SeleniumAgent())
    human_scroll = ScrollTask(page_height=5000).run(HumanAgent())
    return (
        scroll_metrics(
            selenium_scroll.recorder.scroll_events(),
            selenium_scroll.recorder.wheel_ticks(),
        ),
        scroll_metrics(
            human_scroll.recorder.scroll_events(),
            human_scroll.recorder.wheel_ticks(),
        ),
    )


def test_appendixD_event_measurement(benchmark):
    selenium_sm, human_sm = benchmark.pedantic(
        measure_environment, rounds=1, iterations=1
    )
    lines = [
        f"taxonomy: {len(DOCUMENT_EVENTS)} document + {len(ELEMENT_EVENTS)} element "
        f"+ {len(WINDOW_EVENTS)} window events "
        f"({len(ALL_INTERACTION_EVENTS)} distinct; paper prose says 57)",
        f"covering set: {len(COVERING_SET_EVENTS)} events over "
        f"{len(COVERING_SET)} interaction categories",
        f"keyboard timestamp granularity: {VirtualClock.EVENT_GRANULARITY_MS} ms",
        f"double-click interval: default {DEFAULT_DOUBLE_CLICK_INTERVAL_MS:.0f} ms, "
        f"Selenium {SELENIUM_DOUBLE_CLICK_INTERVAL_MS:.0f} ms",
        f"wheel tick: {WHEEL_TICK_PX:.0f} px",
        f"Selenium scrolling: wheel events = {selenium_sm.n_wheel_events}, "
        f"largest single scroll = {selenium_sm.max_single_scroll_px:.0f} px",
        f"Human scrolling:    wheel events = {human_sm.n_wheel_events}, "
        f"median step = {human_sm.median_scroll_step_px:.0f} px",
    ]
    print_table("Appendix D: event-API measurements", lines)

    assert len(COVERING_SET) == 6
    assert VirtualClock.EVENT_GRANULARITY_MS == 1.0
    assert DEFAULT_DOUBLE_CLICK_INTERVAL_MS == 500.0
    assert SELENIUM_DOUBLE_CLICK_INTERVAL_MS == 600.0
    assert WHEEL_TICK_PX == 57.0
    # Selenium: no wheel events, arbitrary distance in one scroll event.
    assert selenium_sm.wheelless
    assert selenium_sm.max_single_scroll_px > 1000
    # Human: wheel ticks of 57 px.
    assert human_sm.n_wheel_events > 10
    assert human_sm.median_scroll_step_px == 57.0


def test_visibilitychange_trap(benchmark):
    """Minimising fires visibilitychange; further interaction is a tell."""
    from repro.browser.window import Window
    from repro.events.recorder import EventRecorder

    def scenario():
        window = Window()
        recorder = EventRecorder(("visibilitychange", "blur", "focus")).attach(window)
        window.set_visibility("hidden")
        return recorder

    recorder = benchmark(scenario)
    types = [e.type for e in recorder.events]
    assert "visibilitychange" in types
    assert "blur" in types
