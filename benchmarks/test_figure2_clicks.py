"""Fig. 2: click distributions of Selenium, human, naive, HLISA.

The paper plots 100 clicks on a relocating element.  Quantified contrasts:

- Selenium: 100 % exactly on the centre;
- naive uniform: spread over the whole element including the corners
  ("places humans never reach");
- human & HLISA: Gaussian cloud around (but hardly ever exactly at) the
  centre, empty corners.
"""

from conftest import print_table

from repro.analysis import click_metrics
from repro.experiment import MovingClickTask, STANDARD_AGENTS


def run_click_experiment(clicks=100):
    summary = {}
    for name, factory in STANDARD_AGENTS.items():
        result = MovingClickTask(clicks=clicks).run(factory())
        records = result.recorder.clicks()
        summary[name] = click_metrics(
            [c.position for c in records], [c.target_box for c in records]
        )
    return summary


def test_figure2_click_distributions(benchmark):
    summary = benchmark.pedantic(run_click_experiment, rounds=1, iterations=1)
    lines = [
        f"{'agent':10s} {'n':>4s} {'exact-centre':>13s} {'mean offset':>12s} "
        f"{'corner rate':>12s} {'outside':>8s}"
    ]
    for name in ("selenium", "human", "naive", "hlisa"):
        m = summary[name]
        lines.append(
            f"{name:10s} {m.n:4d} {m.exact_center_rate:13.2%} "
            f"{m.mean_radial_offset:12.3f} {m.corner_rate:12.2%} "
            f"{m.outside_rate:8.2%}"
        )
    print_table("Figure 2: click distributions", lines)

    # Top-left panel: Selenium clicks perfectly in the centre.
    assert summary["selenium"].exact_center_rate > 0.95
    # Bottom-left: uniform randomisation reaches the corners.
    assert summary["naive"].corner_rate > 0.02
    # Top-right / bottom-right: distributed but hardly ever the centre,
    # and never in the far corners.
    for name in ("human", "hlisa"):
        m = summary[name]
        assert m.exact_center_rate < 0.1
        assert m.corner_rate == 0.0
        assert 0.1 < m.mean_radial_offset < 0.9
    # Nobody clicks outside the element.
    for name, m in summary.items():
        assert m.outside_rate == 0.0, name
