"""Table 2: the screenshot evaluation of the 1,000-site field study.

Paper's numbers (sites / visits):

    Response                 (1) OpenWPM      (2) +extension
    total                    921 / 7,230      921 / 7,221
    missing ads                7 /    56        3 /    10
    - no ads                   5 /    40        1 /     4
    - less ads                 2 /    16        2 /     6
    blocking/CAPTCHAs          8 /    49        1 /     3
    frozen video element(s)    1 /     8        0 /     0

We reproduce the *shape*: spoofing collapses visible bot reactions to a
single sophisticated site on a subset of visits; our screenshot review
additionally counts the breakage-induced frozen video (which the paper
reports separately in its breakage paragraph).
"""

from conftest import print_table

from repro.crawl import (
    OpenWPMCrawler,
    evaluate_breakage,
    evaluate_screenshots,
    generate_population,
)
from repro.spoofing import SpoofingExtension

PAPER_ROWS = {
    "total": ((921, 7230), (921, 7221)),
    "missing ads": ((7, 56), (3, 10)),
    "- no ads": ((5, 40), (1, 4)),
    "- less ads": ((2, 16), (2, 6)),
    "blocking/CAPTCHAs": ((8, 49), (1, 3)),
    "frozen video element(s)": ((1, 8), (0, 0)),
}


def run_field_study():
    population = generate_population()
    baseline = OpenWPMCrawler("OpenWPM", extension=None, instances=8, seed=11).crawl(
        population
    )
    extended = OpenWPMCrawler(
        "OpenWPM+extension", extension=SpoofingExtension(), instances=8, seed=22
    ).crawl(population)
    return (
        evaluate_screenshots(baseline),
        evaluate_screenshots(extended),
        evaluate_breakage(baseline, extended),
    )


def test_table2_screenshot_evaluation(benchmark):
    base_eval, ext_eval, breakage = benchmark.pedantic(
        run_field_study, rounds=1, iterations=1
    )
    lines = [
        f"{'Response':26s} {'(1)s':>6s} {'(2)s':>6s} {'(1)v':>7s} {'(2)v':>7s}   paper(1)   paper(2)"
    ]
    for (label, s1, v1), (_, s2, v2) in zip(base_eval.rows(), ext_eval.rows()):
        p1, p2 = PAPER_ROWS[label]
        lines.append(
            f"{label:26s} {s1:6d} {s2:6d} {v1:7d} {v2:7d}   "
            f"{p1[0]}/{p1[1]:<7d} {p2[0]}/{p2[1]}"
        )
    lines.append(
        f"breakage: layout={breakage.deformed_layout_sites} "
        f"video={breakage.frozen_video_sites} (paper: 1 deformed layout, "
        f"1 ever-loading video)"
    )
    print_table("Table 2: screenshot evaluation (measured vs paper)", lines)

    # Shape assertions (Section 3.2's findings):
    # visible signs of detection on only ~1-2% of sites for stock OpenWPM...
    assert 10 <= base_eval.affected_sites <= 30
    assert base_eval.affected_sites / base_eval.total_sites < 0.04
    # ... spoofing significantly reduces the effect ...
    assert ext_eval.blocking_captchas.sites <= 1
    assert ext_eval.blocking_captchas.visits < base_eval.blocking_captchas.visits / 3
    assert ext_eval.missing_ads.visits < base_eval.missing_ads.visits / 2
    # ... and breakage exists but is rare (2 sites).
    assert breakage.total == 2
