"""Performance: what does humanisation cost?

HLISA trades speed for stealth -- the paper's implicit bargain.  These
benchmarks measure both sides on the same operation:

- wall-clock *planning* overhead (real CPU time to compute humanised
  trajectories, typing plans, scroll cadences) -- HLISA's true runtime
  cost, since simulated-world delays are free;
- simulated *interaction time* (how much longer a human-like session
  takes in browser time) -- the crawl-throughput cost a measurement
  study pays.
"""

import gc
import time

import numpy as np
from conftest import print_table

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    PopulationConfig,
    generate_population,
)
from repro.faults import FaultPlan
from repro.geometry import Point
from repro.models.bezier import hlisa_path
from repro.models.scroll_cadence import ScrollCadence
from repro.models.typing_rhythm import TypingRhythm
from repro.obs.probes import ProbeLedger
from repro.obs.tracer import NULL_TRACER
from repro.spoofing import SpoofingExtension
from repro.webdriver.action_chains import ActionChains
from repro.webdriver.driver import make_browser_driver


def test_perf_trajectory_planning(benchmark):
    rng = np.random.default_rng(1)
    result = benchmark(
        lambda: hlisa_path(Point(10, 10), Point(1200, 650), rng)
    )
    assert len(result) > 5


def test_perf_typing_plan(benchmark):
    rng = np.random.default_rng(2)
    rhythm = TypingRhythm(rng)
    text = "The quick brown fox jumps over the lazy dog." * 2
    plan = benchmark(lambda: rhythm.plan(text))
    assert len(plan) >= 2 * len(text)


def test_perf_scroll_plan(benchmark):
    rng = np.random.default_rng(3)
    cadence = ScrollCadence(rng)
    plan = benchmark(lambda: cadence.plan(5000.0))
    assert len(plan) > 50


def test_perf_full_click_selenium(benchmark):
    def selenium_click():
        driver = make_browser_driver()
        ActionChains(driver).click(driver.find_element_by_id("submit")).perform()
        return driver

    driver = benchmark(selenium_click)
    assert driver.window.clock.now() > 0


def test_perf_full_click_hlisa(benchmark):
    def hlisa_click():
        driver = make_browser_driver()
        chain = HLISA_ActionChains(driver, seed=1)
        chain.click(driver.find_element_by_id("submit"))
        chain.perform()
        return driver

    driver = benchmark(hlisa_click)
    assert driver.window.clock.now() > 0


def test_simulated_time_cost(benchmark):
    """Browser-time cost of humanisation (the crawl-throughput price)."""

    def measure():
        costs = {}
        driver = make_browser_driver()
        start = driver.window.clock.now()
        ActionChains(driver).click(driver.find_element_by_id("submit")).perform()
        costs["selenium_click_ms"] = driver.window.clock.now() - start

        driver = make_browser_driver()
        chain = HLISA_ActionChains(driver, seed=1)
        start = driver.window.clock.now()
        chain.click(driver.find_element_by_id("submit"))
        chain.perform()
        costs["hlisa_click_ms"] = driver.window.clock.now() - start

        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        start = driver.window.clock.now()
        area.send_keys("measurement text, one line.")
        costs["selenium_typing_ms"] = driver.window.clock.now() - start

        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        chain = HLISA_ActionChains(driver, seed=1)
        start = driver.window.clock.now()
        chain.send_keys_to_element(area, "measurement text, one line.")
        chain.perform()
        costs["hlisa_typing_ms"] = driver.window.clock.now() - start
        return costs

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{name:22s} {value:9.0f} ms (simulated)" for name, value in costs.items()]
    lines.append("")
    lines.append(
        f"humanisation slows a click ~{costs['hlisa_click_ms'] / max(costs['selenium_click_ms'], 1):.0f}x "
        f"and typing ~{costs['hlisa_typing_ms'] / max(costs['selenium_typing_ms'], 1):.0f}x in browser time"
    )
    print_table("Simulated-time cost of human-likeness", lines)
    assert costs["hlisa_click_ms"] > costs["selenium_click_ms"]
    assert costs["hlisa_typing_ms"] > 10 * costs["selenium_typing_ms"]


def test_perf_tracing_overhead(benchmark):
    """Observability must stay cheap: a fully traced supervised crawl may
    cost at most 10% more wall clock than the same crawl with tracing off
    (``NULL_TRACER``).  Runs alternate on/off and the minimum of several
    rounds is compared, which cancels scheduler noise."""

    population = generate_population(
        PopulationConfig(
            n_sites=30,
            seed=3,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=2,
            n_captcha_detectors=1,
            n_freeze_video_detectors=0,
            n_other_signal_ad_detectors=0,
            n_side_effect_blockers=0,
            n_http_only_detectors=3,
        )
    )

    def crawl(traced: bool):
        crawler = OpenWPMCrawler("overhead", instances=2, seed=7)
        plan = FaultPlan.generate(population, 2, rate=0.2, seed=5)
        supervisor = CrawlSupervisor(
            crawler, plan=plan, tracer=None if traced else NULL_TRACER
        )
        supervisor.crawl(population)
        return supervisor

    def measure():
        crawl(True), crawl(False)  # warm-up: caches, allocator, imports
        traced_s, untraced_s = [], []
        for _ in range(5):
            start = time.perf_counter()
            supervisor = crawl(True)
            traced_s.append(time.perf_counter() - start)
            start = time.perf_counter()
            crawl(False)
            untraced_s.append(time.perf_counter() - start)
        return min(traced_s), min(untraced_s), len(supervisor.tracer.spans)

    traced, untraced, n_spans = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = traced / untraced - 1.0
    print_table(
        "Tracing overhead on a supervised crawl",
        [
            f"{'tracing off (NULL_TRACER)':28s} {untraced * 1e3:8.1f} ms",
            f"{'tracing on':28s} {traced * 1e3:8.1f} ms  ({n_spans} spans)",
            f"{'overhead':28s} {overhead:+8.1%}  (budget +10.0%)",
        ],
    )
    assert overhead <= 0.10


def test_perf_probe_ledger_overhead(benchmark):
    """The probe ledger is opt-in and must stay cheap when on: a
    ledger-recording supervised crawl may cost at most 10% more wall
    clock than the same crawl with the ledger off (its default).
    Minimum-of-rounds with alternating run order and GC paused, on a
    crawl long enough (hundreds of ms) that bursty machine load averages
    out inside each run instead of deciding the comparison."""

    population = generate_population(
        PopulationConfig(
            n_sites=600,
            seed=3,
            n_no_ads_detectors=2,
            n_less_ads_detectors=1,
            n_block_detectors=4,
            n_captcha_detectors=2,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=8,
            n_http_only_detectors=12,
        )
    )

    def crawl(with_ledger: bool):
        crawler = OpenWPMCrawler(
            "ledger-overhead",
            extension=SpoofingExtension(),
            instances=4,
            seed=7,
        )
        supervisor = CrawlSupervisor(
            crawler,
            tracer=NULL_TRACER,
            probe_ledger=ProbeLedger() if with_ledger else None,
        )
        supervisor.crawl(population)
        return supervisor

    def measure():
        crawl(True), crawl(False)  # warm-up: caches, allocator, imports
        on_s, off_s = [], []
        gc.disable()
        try:
            for round_index in range(10):
                # alternate which side runs first so drifting machine
                # load cannot systematically tax one of them
                order = (
                    (True, False) if round_index % 2 == 0 else (False, True)
                )
                for with_ledger in order:
                    start = time.perf_counter()
                    supervisor = crawl(with_ledger)
                    elapsed = time.perf_counter() - start
                    if with_ledger:
                        on_s.append(elapsed)
                        n_entries = len(supervisor.ledger)
                    else:
                        off_s.append(elapsed)
        finally:
            gc.enable()
        return min(on_s), min(off_s), n_entries

    ledger_on, ledger_off, n_entries = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = ledger_on / ledger_off - 1.0
    print_table(
        "Probe-ledger overhead on a supervised crawl",
        [
            f"{'ledger off (default)':28s} {ledger_off * 1e3:8.1f} ms",
            f"{'ledger on':28s} {ledger_on * 1e3:8.1f} ms  ({n_entries} entries)",
            f"{'overhead':28s} {overhead:+8.1%}  (budget +10.0%)",
        ],
    )
    assert overhead <= 0.10
