"""Sharded crawl scaling: serial vs 2- and 4-worker wall-clock.

Runs the same synthetic crawl three ways -- one serial supervisor, then
the shard executor with ``jobs=2`` and ``jobs=4`` -- and records
wall-clock milliseconds per 1k visits for each under the
``shard_scaling`` key of ``BENCH_crawl.json`` (read-merge-write, so the
hostile-ablation keys coexist; CI uploads the file).

Byte-identity is asserted **strictly**: every merged artifact must equal
the serial run's, at every worker count.  Scaling itself is recorded,
not asserted -- wall-clock speedup depends on the runner's core count
(this repo's CI containers range from 1 to 4 cores), while the bytes do
not.
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.crawl import PopulationConfig, generate_population
from repro.faults import FaultPlan
from repro.obs import append_history
from repro.shard import ShardRunSpec, build_supervisor, run_sharded_crawl

BENCH_PATH = Path("BENCH_crawl.json")

SITES = 1_000
INSTANCES = 8
SHARD_SIZE = 125  # 8 shards: enough to keep 4 workers busy
SEED = 1
FAULT_RATE = 0.05
ARTIFACTS = (
    "crawl.ckpt.json",
    "crawl.trace.jsonl",
    "crawl.metrics.json",
    "crawl.records.json",
)


def _merge_bench(update):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data.update(update)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    append_history(Path("BENCH_HISTORY.jsonl"), [BENCH_PATH], label='shard-scaling')


def test_shard_scaling_is_byte_identical_and_recorded(tmp_path):
    population = generate_population(
        PopulationConfig(n_sites=SITES, seed=2021)
    )
    fault_plan = FaultPlan.generate(
        population, INSTANCES, rate=FAULT_RATE, seed=11
    )
    spec = ShardRunSpec(
        crawler_name="OpenWPM",
        seed=SEED,
        instances=INSTANCES,
        fault_plan=fault_plan,
    )

    # Serial oracle: one supervisor, canonical exports.
    serial_dir = tmp_path / "serial"
    serial_dir.mkdir()
    started = time.perf_counter()
    supervisor = build_supervisor(spec)
    result = supervisor.crawl(
        population,
        checkpoint_path=serial_dir / "crawl.ckpt.json",
        trace_path=serial_dir / "crawl.trace.jsonl",
    )
    serial_s = time.perf_counter() - started
    canonical = dict(sort_keys=True, separators=(",", ":"))
    (serial_dir / "crawl.metrics.json").write_text(
        json.dumps(supervisor.metrics.state_dict(), **canonical) + "\n"
    )
    (serial_dir / "crawl.records.json").write_text(
        json.dumps([r.to_dict() for r in result.records], **canonical) + "\n"
    )
    visits = len(result.records)
    assert visits == SITES * INSTANCES

    timings = {"serial": serial_s}
    for jobs in (2, 4):
        out_dir = tmp_path / f"jobs{jobs}"
        started = time.perf_counter()
        outcome = run_sharded_crawl(
            population,
            out_dir=out_dir,
            crawler_name=spec.crawler_name,
            seed=spec.seed,
            instances=spec.instances,
            fault_plan=spec.fault_plan,
            shard_size=SHARD_SIZE,
            jobs=jobs,
        )
        timings[f"jobs{jobs}"] = time.perf_counter() - started
        assert outcome.complete
        for name in ARTIFACTS:
            assert (out_dir / name).read_bytes() == (
                serial_dir / name
            ).read_bytes(), f"jobs={jobs}: {name} diverges from serial"

    per_1k = {
        label: round(seconds * 1000.0 / (visits / 1000.0), 2)
        for label, seconds in timings.items()
    }
    _merge_bench(
        {
            "shard_scaling": {
                "sites": SITES,
                "instances": INSTANCES,
                "visits": visits,
                "shard_size": SHARD_SIZE,
                "fault_rate": FAULT_RATE,
                "byte_identical": True,
                "wall_ms_per_1k_visits": per_1k,
                "speedup_jobs2": round(serial_s / timings["jobs2"], 3),
                "speedup_jobs4": round(serial_s / timings["jobs4"], 3),
            }
        }
    )
    print_table(
        "Sharded crawl scaling (byte-identical at every worker count)",
        [
            f"{label:>8}: {seconds:6.2f}s wall "
            f"({per_1k[label]:8.2f} ms / 1k visits)"
            for label, seconds in timings.items()
        ]
        + [f"wrote {BENCH_PATH}"],
    )
