"""Linter driver: parallel speed-up and serial/parallel equivalence.

The acceptance property of the multiprocess driver is not speed but
*identity*: ``--jobs N`` must render byte-identical JSON to a serial
run, or the lint gate itself would be the nondeterminism it polices.
The benchmark measures the full-tree lint cost alongside, since the CI
gate pays it on every push.
"""

import os
from pathlib import Path

from conftest import print_table

from repro.lint import Baseline, render_json, render_text, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def _baseline() -> Baseline:
    path = REPO_ROOT / "lint-baseline.json"
    return Baseline.load(path) if path.exists() else Baseline.empty()


def test_parallel_driver_matches_serial_byte_for_byte():
    serial = run_lint([SRC], root=REPO_ROOT, baseline=_baseline(), jobs=1)
    parallel = run_lint(
        [SRC],
        root=REPO_ROOT,
        baseline=_baseline(),
        jobs=max(os.cpu_count() or 2, 2),
    )
    assert render_json(serial) == render_json(parallel)
    assert render_text(serial) == render_text(parallel)
    assert serial.exit_code == parallel.exit_code == 0
    print_table(
        "Lint drivers: serial vs parallel",
        [
            f"files linted   {serial.files}",
            f"new findings   {len(serial.new_findings)}",
            f"baselined      {len(serial.baselined)}",
            f"suppressed     {serial.suppressed}",
        ],
    )


def test_perf_full_tree_lint(benchmark):
    report = benchmark(
        lambda: run_lint([SRC], root=REPO_ROOT, baseline=_baseline())
    )
    assert report.files > 100
    assert report.exit_code == 0
