"""Ablation: the (0,0) origin tell and the Appendix F warm-up.

"Mouse movement starting at (0,0), which can be solved by moving the
mouse prior to loading a page" -- an experiment-level fix the paper
deliberately keeps *out* of HLISA.  The ablation shows both halves: the
tell exists, and the one-line warm-up removes it without touching the
interaction API.
"""

import numpy as np
from conftest import print_table

from repro.behaviors import OriginStartDetector, warm_up_cursor
from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.webdriver.driver import make_browser_driver


def run_variant(warm_up: bool):
    driver = make_browser_driver()
    if warm_up:
        # Before the page is (conceptually) loaded -- and thus before its
        # scripts can record anything.
        warm_up_cursor(driver, np.random.default_rng(5))
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    chain = HLISA_ActionChains(driver, seed=11)
    chain.click(driver.find_element_by_id("submit"))
    chain.perform()
    return OriginStartDetector().observe(recorder)


def test_ablation_origin_warmup(benchmark):
    verdicts = benchmark(
        lambda: {
            "no warm-up": run_variant(False),
            "with warm-up": run_variant(True),
        }
    )
    lines = [
        f"{'variant':14s} verdict",
        f"{'no warm-up':14s} "
        + ("BOT: " + verdicts["no warm-up"].reasons[0] if verdicts["no warm-up"].is_bot else "pass"),
        f"{'with warm-up':14s} " + ("BOT" if verdicts["with warm-up"].is_bot else "pass"),
    ]
    print_table("Ablation: (0,0) origin tell vs experiment-level warm-up", lines)
    assert verdicts["no warm-up"].is_bot
    assert not verdicts["with warm-up"].is_bot
