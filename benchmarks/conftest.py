"""Benchmark configuration and shared helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
output).  Heavy pipelines are benchmarked with a single round via
``benchmark.pedantic`` -- the timing of interest is the pipeline's cost,
not micro-variance.
"""

from __future__ import annotations


def print_table(title: str, lines) -> None:
    """Uniform table printing for benchmark output."""
    bar = "=" * max(len(title), 40)
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
