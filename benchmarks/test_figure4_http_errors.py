"""Fig. 4 / Appendix B: HTTP (error) responses by status code.

Paper findings reproduced as shape:

- overall, the detectable crawler does "not retrieve a far larger number
  of error responses";
- the significant variation concentrates on 403 (forbidden) and 503
  (service unavailable) -- the bot-blocking codes;
- the Wilcoxon matched-pairs signed-rank test finds the first-party
  error decrease significant (paper: p = 0.004), third-party not.
"""

from conftest import print_table

from repro.crawl import OpenWPMCrawler, evaluate_http_errors, generate_population
from repro.spoofing import SpoofingExtension


def run_http_comparison():
    population = generate_population()
    baseline = OpenWPMCrawler("OpenWPM", None, instances=8, seed=11).crawl(population)
    extended = OpenWPMCrawler(
        "OpenWPM+extension", SpoofingExtension(), instances=8, seed=22
    ).crawl(population)
    return evaluate_http_errors(baseline, extended)


def test_figure4_http_errors(benchmark):
    evaluation = benchmark.pedantic(run_http_comparison, rounds=1, iterations=1)
    lines = [f"{'status':>6s} {'OpenWPM':>10s} {'+extension':>11s} {'delta':>7s}"]
    for status, base, ext in evaluation.rows(min_occurrences=100):
        lines.append(f"{status:6d} {base:10d} {ext:11d} {base - ext:7d}")
    fp = evaluation.first_party_wilcoxon
    tp = evaluation.third_party_wilcoxon
    lines.append("")
    lines.append(
        f"first-party errors: {evaluation.baseline_first_party_errors} -> "
        f"{evaluation.extended_first_party_errors}; Wilcoxon p = {fp.p_value:.4f} "
        f"(paper: p = 0.004)"
    )
    lines.append(f"third-party Wilcoxon p = {tp.p_value:.3f} (paper: not significant)")
    print_table("Figure 4: HTTP responses by status code", lines)

    # Shape assertions.
    error_rows = {
        status: (base, ext)
        for status, base, ext in evaluation.rows(min_occurrences=100)
        if status >= 400
    }
    assert 403 in error_rows and 503 in error_rows
    deltas = {s: b - e for s, (b, e) in error_rows.items()}
    ranked = sorted(deltas, key=lambda s: deltas[s], reverse=True)
    assert set(ranked[:2]) == {403, 503}, ranked
    assert fp.significant(0.05)
    assert not tp.significant(0.05)
    # "OpenWPM does not retrieve a far larger number of error responses":
    base_total = sum(b for b, _ in error_rows.values())
    ext_total = sum(e for _, e in error_rows.values())
    assert base_total < 1.5 * ext_total
