"""Ablation: the replay attack vs per-session and cross-session defence.

Section 4.2's escalation in one table: a bot replaying recorded human
interaction (the statistical attack of the paper's related work) passes
every within-session battery -- its data *is* human.  Its "perfect
replayability" is the remaining tell, visible only to a detector with
memory across visits.
"""

from conftest import print_table

from repro.detection import DetectorBattery, DetectionLevel
from repro.detection.replay import CrossSessionReplayDetector
from repro.experiment import HumanAgent, Session
from repro.experiment.replay import ReplayAgent
from repro.geometry import Box
from repro.humans.profile import HumanProfile


def build_page(session):
    document = session.document
    return [
        document.create_element("a", Box(90, 60, 160, 26), id="nav"),
        document.create_element("button", Box(1050, 120, 140, 44), id="search"),
        document.create_element("button", Box(540, 620, 160, 48), id="submit"),
        document.create_element("input", Box(420, 300, 420, 36), id="email"),
    ]


def record_human(seed):
    session = Session(automated=False, page_height=4000)
    elements = build_page(session)
    agent = HumanAgent(HumanProfile(seed=seed))
    for _ in range(5):
        for element in elements[:3]:
            agent.click_element(session, element)
            session.clock.advance(350.0)
    agent.type_text(session, elements[3], "visitor@example.org")
    return session.recorder


def run_study():
    source = record_human(seed=77)
    battery = DetectorBattery(DetectionLevel.CONSISTENCY)
    replay_detector = CrossSessionReplayDetector()

    outcomes = {}
    # Three consecutive replayed "visits" of the same recording.
    for visit in range(1, 4):
        session = Session(automated=True, page_height=4000)
        build_page(session)
        ReplayAgent(source).run(session)
        outcomes[f"replay visit {visit}"] = (
            battery.evaluate(session.recorder).is_bot,
            replay_detector.observe(session.recorder).is_bot,
        )
    # Control: three *fresh* human visits through the same detectors.
    fresh_detector = CrossSessionReplayDetector()
    for visit, seed in enumerate((401, 402, 403), start=1):
        recorder = record_human(seed)
        outcomes[f"human visit {visit}"] = (
            battery.evaluate(recorder).is_bot,
            fresh_detector.observe(recorder).is_bot,
        )
    return outcomes


def test_ablation_replay_attack(benchmark):
    outcomes = benchmark.pedantic(run_study, rounds=1, iterations=1)
    lines = [f"{'visit':16s} {'within-session (L1-L3)':>23s} {'cross-session':>14s}"]
    for label, (within, cross) in outcomes.items():
        lines.append(
            f"{label:16s} {'BOT' if within else 'pass':>23s} "
            f"{'BOT' if cross else 'pass':>14s}"
        )
    print_table("Ablation: the replay attack", lines)

    # Replays always pass within-session batteries...
    for visit in range(1, 4):
        assert not outcomes[f"replay visit {visit}"][0]
    # ...the first replay is unknown, repeats are caught.
    assert not outcomes["replay visit 1"][1]
    assert outcomes["replay visit 2"][1]
    assert outcomes["replay visit 3"][1]
    # Humans pass both, always.
    for visit in range(1, 4):
        assert outcomes[f"human visit {visit}"] == (False, False)
