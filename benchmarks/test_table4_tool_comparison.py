"""Table 4: feature comparison of humanisation tools.

The matrix is regenerated *empirically*: every backend (our faithful
re-implementation of each tool's algorithmic core) is probed by running
it through the recording harness and measuring each feature.

Qualitative shape that must match the paper: HLISA covers by far the most
features and is the only tool covering all four interaction modalities;
Scroller is scroll-only; ClickBot uniquely simulates accidental clicks;
the thesis tool [20] is the only other keyboard-capable entry; exactly
three tools are Selenium-ready.
"""

from conftest import print_table

from repro.tools import build_feature_matrix
from repro.tools.matrix import TABLE4_COLUMNS


def test_table4_tool_comparison(benchmark):
    matrix = benchmark.pedantic(
        lambda: build_feature_matrix(click_attempts=120), rounds=1, iterations=1
    )
    lines = [matrix.format_table()]
    counts = {c: matrix.feature_count(c) for c in matrix.columns}
    lines.append("")
    lines.append("feature counts: " + "  ".join(f"{c}={n}" for c, n in counts.items()))
    print_table("Table 4: tool comparison (measured)", lines)

    # HLISA leads by a wide margin.
    assert counts["HLISA"] == max(counts.values())
    assert counts["HLISA"] >= 2 * sorted(counts.values())[-2] - 2

    # Modality coverage.
    modalities = ("mouse_movement", "click_functionality", "scrolling", "keyboard")
    full_coverage = [
        c for c in TABLE4_COLUMNS if all(matrix.supported(m, c) for m in modalities)
    ]
    assert full_coverage == ["HLISA"]

    # Specialists.
    assert matrix.supported("scrolling", "Scroller")
    assert not matrix.supported("mouse_movement", "Scroller")
    for feature in ("accidental_right_click", "accidental_double_click", "accidental_no_click"):
        assert matrix.supported(feature, "ClickBot")
    assert matrix.supported("timings_based_on_data", "[20]")
    selenium_ready = [c for c in TABLE4_COLUMNS if matrix.supported("selenium_ready", c)]
    assert len(selenium_ready) == 3  # as in the paper's bottom row
