"""Ablation: which ingredients of HLISA's trajectory model matter?

HLISA's curve = Bézier + minimum-jerk easing + tremor.  Removing each
ingredient reveals which detector catches the result:

- remove everything       -> straight uniform line   -> level-1 prey;
- keep curve only         -> the naive solution      -> level-2 (shape);
- curve + easing, no jitter -> still level-2 (tremor-free);
- full model              -> evades level 2.
"""

import numpy as np
from conftest import print_table

from repro.analysis.trajectory import trajectory_metrics
from repro.detection.artificial import StraightLineDetector, SuperhumanSpeedDetector
from repro.detection.deviation import TrajectoryShapeDetector, UniformSpeedDetector
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Point
from repro.models.bezier import (
    TrajectoryParams,
    hlisa_path,
    naive_bezier_path,
    straight_line_path,
)
from repro.webdriver.driver import make_browser_driver

VARIANTS = ["straight", "bezier-only", "bezier+easing", "full-hlisa"]


def generate_variant(variant: str, rng: np.random.Generator):
    """One movement recording per variant (same endpoints)."""
    start, end = Point(80, 650), Point(1150, 180)
    if variant == "straight":
        return straight_line_path(start, end, duration_ms=250.0)
    if variant == "bezier-only":
        return naive_bezier_path(start, end, rng)
    if variant == "bezier+easing":
        params = TrajectoryParams(jitter_px=0.0)
        return hlisa_path(start, end, rng, params=params)
    return hlisa_path(start, end, rng)


def record_variant(variant: str, movements: int = 6):
    driver = make_browser_driver()
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    rng = np.random.default_rng(13)
    for i in range(movements):
        path = generate_variant(variant, rng)
        clock = driver.window.clock
        previous = 0.0
        # Alternate directions so each segment is a fresh movement.
        points = path if i % 2 == 0 else [(t, Point(1230 - p.x, 830 - p.y)) for t, p in path]
        for t, p in points:
            clock.advance(max(t - previous, 0.0))
            driver.pipeline.move_mouse_to(p.x, p.y)
            previous = t
        clock.advance(400.0)
    return recorder


def run_ablation():
    detectors = [
        SuperhumanSpeedDetector(),
        StraightLineDetector(),
        UniformSpeedDetector(),
        TrajectoryShapeDetector(),
    ]
    outcome = {}
    for variant in VARIANTS:
        recorder = record_variant(variant)
        outcome[variant] = [d.name for d in detectors if d.observe(recorder).is_bot]
    return outcome


def test_ablation_trajectory(benchmark):
    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [f"{'variant':16s} flagged by"]
    for variant in VARIANTS:
        flagged = ", ".join(outcome[variant]) or "(nothing)"
        lines.append(f"{variant:16s} {flagged}")
    print_table("Ablation: trajectory-model ingredients", lines)

    assert "straight-line" in outcome["straight"] or "superhuman-speed" in outcome["straight"]
    assert "trajectory-shape" in outcome["bezier-only"] or "uniform-speed" in outcome["bezier-only"]
    assert "trajectory-shape" in outcome["bezier+easing"]  # tremor missing
    assert outcome["full-hlisa"] == []
