"""Ablation: one full refinement turn of the arms race.

Section 4.2: within a rung, "either side can refine their techniques --
in this case, the models on which detection/simulation is based."
Appendix F names the opening: HLISA's normal distributions vs real
right-skewed timing.  The cycle, executed:

1. status quo: stock HLISA passes the standard level-2 battery;
2. detector refines: a skew-aware test catches stock HLISA (symmetric
   dwell distribution) while sparing the human;
3. simulator refines: lognormal HLISA restores the skew and passes --
   without regressing against the standard battery.
"""

from conftest import print_table

from repro.detection import DetectorBattery, DetectionLevel
from repro.experiment import HLISAAgent, HumanAgent, TypingTask
from repro.models.refinements import LognormalTypingRhythm, SkewAwareTypingDetector

LONG_TEXT = (
    "The quick brown fox jumps over the lazy dog, twice. "
    "Pack my box with five dozen liquor jugs. Forever and ever."
)


def refined_hlisa():
    agent = HLISAAgent(seed=3)
    original = agent._chain_for

    def patched(session):
        chain = original(session)
        chain._typing = LognormalTypingRhythm(chain._rng, chain._typing.params)
        return chain

    agent._chain_for = patched
    return agent


def run_cycle():
    detector = SkewAwareTypingDetector()
    battery = DetectorBattery(DetectionLevel.DEVIATION)
    outcome = {}
    for label, agent in (
        ("human", HumanAgent()),
        ("stock-hlisa", HLISAAgent(seed=3)),
        ("refined-hlisa", refined_hlisa()),
    ):
        recorder = TypingTask(LONG_TEXT).run(agent).recorder
        outcome[label] = {
            "standard-L2": battery.evaluate(recorder).is_bot,
            "skew-refined": detector.observe(recorder).is_bot,
        }
    return outcome


def test_ablation_refinement_cycle(benchmark):
    outcome = benchmark.pedantic(run_cycle, rounds=1, iterations=1)
    lines = [f"{'agent':15s} {'standard L2':>12s} {'refined (skew)':>15s}"]
    for label, row in outcome.items():
        lines.append(
            f"{label:15s} {'BOT' if row['standard-L2'] else 'pass':>12s} "
            f"{'BOT' if row['skew-refined'] else 'pass':>15s}"
        )
    print_table("Ablation: the intra-level refinement cycle", lines)

    assert not outcome["human"]["standard-L2"]
    assert not outcome["human"]["skew-refined"]
    assert not outcome["stock-hlisa"]["standard-L2"]  # status quo
    assert outcome["stock-hlisa"]["skew-refined"]  # detector refines
    assert not outcome["refined-hlisa"]["skew-refined"]  # simulator answers
    assert not outcome["refined-hlisa"]["standard-L2"]  # without regressing
