"""Robustness: the Fig. 3 matrix holds for every simulated subject.

The paper's Appendix F cautions that its human data came from a few
similar subjects.  Here the whole arms-race tournament re-runs with each
subject of the pool (different Fitts slopes, tremor, click scatter,
typing rhythm) -- the matrix must stay the model's lower triangle and no
subject may ever be flagged.
"""

from conftest import print_table

from repro.armsrace import Tournament
from repro.humans.profile import SUBJECT_POOL


def run_all_subjects():
    outcomes = {}
    for name, profile in SUBJECT_POOL.items():
        result = Tournament(subject=profile).run()
        outcomes[name] = result
    return outcomes


def test_tournament_robust_across_subjects(benchmark):
    outcomes = benchmark.pedantic(run_all_subjects, rounds=1, iterations=1)
    lines = []
    for name, result in outcomes.items():
        status = "matches model" if result.matches_model() else "DEVIATES"
        lines.append(f"{name:12s} {status}")
        for mismatch in result.mismatches():
            lines.append(f"             ! {mismatch}")
    print_table("Arms-race matrix across the subject pool", lines)
    for name, result in outcomes.items():
        assert result.matches_model(), (name, result.mismatches())
