"""Fig. 1: cursor trajectories of (A) Selenium, (B) human, (C) the naive
Bézier, (D) HLISA.

The paper shows the four paths visually; we quantify the qualitative
contrasts that make the figure legible:

- A is perfectly straight and uniform-speed;
- C is curved but smooth (no tremor) and uniform-speed;
- B and D are curved, carry tremor, and accelerate/decelerate.
"""

import numpy as np
from conftest import print_table

from repro.analysis.trajectory import per_movement_metrics
from repro.experiment import PointingTask, STANDARD_AGENTS

ORDER = [("selenium", "A"), ("human", "B"), ("naive", "C"), ("hlisa", "D")]


def run_pointing_experiment():
    summary = {}
    for name, factory in STANDARD_AGENTS.items():
        result = PointingTask(repetitions=3).run(factory())
        movements = [
            m
            for m in per_movement_metrics(result.recorder.mouse_path())
            if m.chord_length > 300
        ]
        summary[name] = {
            "straightness": float(np.mean([m.straightness for m in movements])),
            "speed_cv": float(np.mean([m.speed_cv for m in movements])),
            "edge_mid": float(
                np.mean([m.edge_to_middle_speed_ratio for m in movements])
            ),
            "jitter": float(np.mean([m.jitter_rms_px for m in movements])),
            "speed": float(np.mean([m.mean_speed_px_s for m in movements])),
        }
    return summary


def test_figure1_trajectories(benchmark):
    summary = benchmark.pedantic(run_pointing_experiment, rounds=1, iterations=1)
    lines = [
        f"{'panel':5s} {'agent':10s} {'straight':>9s} {'speedCV':>8s} "
        f"{'edge/mid':>9s} {'jitter':>7s} {'px/s':>6s}"
    ]
    for name, panel in ORDER:
        s = summary[name]
        lines.append(
            f"{panel:5s} {name:10s} {s['straightness']:9.4f} {s['speed_cv']:8.2f} "
            f"{s['edge_mid']:9.2f} {s['jitter']:7.2f} {s['speed']:6.0f}"
        )
    print_table("Figure 1: trajectory signatures", lines)

    sel, hum, nai, hli = (summary[n] for n in ("selenium", "human", "naive", "hlisa"))
    # (A) Selenium: straight line at uniform speed, superhuman pace.
    assert sel["straightness"] > 0.999
    assert sel["speed_cv"] < 0.1
    assert sel["speed"] > 3000
    # (C) naive: curved but "still very artificial" -- smooth & uniform.
    assert nai["straightness"] < 0.999
    assert nai["jitter"] < 0.55
    assert nai["edge_mid"] > 0.85
    # (B)/(D): curved, jittery, accelerating/decelerating.
    for s in (hum, hli):
        assert s["straightness"] < 0.999
        assert s["jitter"] > 0.55
        assert s["edge_mid"] < 0.6
        assert s["speed_cv"] > 0.3
        assert s["speed"] < 3000
    # HLISA resembles the human far more than Selenium does.
    def distance(a, b):
        keys = ("straightness", "speed_cv", "edge_mid")
        return sum(abs(a[k] - b[k]) for k in keys)

    assert distance(hli, hum) < distance(sel, hum) / 3
