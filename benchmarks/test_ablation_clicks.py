"""Ablation: click-placement models vs the scatter detector (Fig. 2's
argument, quantified).

Centre clicks are level-1 prey; uniform randomisation "improves over
Selenium's default behaviour" but is level-2 prey (corner mass); the
truncated Gaussian passes.  An over-tight Gaussian (sigma too small)
fails again -- the parameters matter, not just the distribution family.
"""

import numpy as np
from conftest import print_table

from repro.detection.artificial import PerfectCenterClickDetector
from repro.detection.deviation import ClickScatterDetector
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.models.clicks import ClickParams, hlisa_click_point, uniform_click_point
from repro.webdriver.driver import make_browser_driver

VARIANTS = ["center", "uniform", "gaussian", "tight-gaussian"]


def click_point_for(variant, box, rng):
    if variant == "center":
        return box.center
    if variant == "uniform":
        return uniform_click_point(box, rng)
    if variant == "gaussian":
        return hlisa_click_point(box, rng)
    return hlisa_click_point(box, rng, ClickParams(sigma_frac=0.015))


def record_variant(variant, clicks=60):
    driver = make_browser_driver()
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    rng = np.random.default_rng(29)
    element = driver.window.document.create_element(
        "button", Box(500, 300, 90, 90), id="t"
    )
    for _ in range(clicks):
        point = click_point_for(variant, element.box, rng)
        client = driver.window.page_to_client(point)
        driver.pipeline.move_mouse_to(client.x, client.y, force_event=True)
        driver.pipeline.mouse_down()
        driver.window.clock.advance(85.0)
        driver.pipeline.mouse_up()
        driver.window.clock.advance(400.0)
        size = 90.0
        element.box = Box(
            float(rng.uniform(10, 1200)), float(rng.uniform(10, 650)), size, size
        )
    return recorder


def run_ablation():
    outcome = {}
    for variant in VARIANTS:
        recorder = record_variant(variant)
        flagged = []
        for detector in (PerfectCenterClickDetector(), ClickScatterDetector()):
            if detector.observe(recorder).is_bot:
                flagged.append(detector.name)
        outcome[variant] = flagged
    return outcome


def test_ablation_clicks(benchmark):
    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [f"{'variant':16s} flagged by"]
    for variant in VARIANTS:
        lines.append(f"{variant:16s} {', '.join(outcome[variant]) or '(nothing)'}")
    print_table("Ablation: click-placement models", lines)

    assert "perfect-center-clicks" in outcome["center"]
    assert "click-scatter" in outcome["uniform"]
    assert outcome["gaussian"] == []
    assert "click-scatter" in outcome["tight-gaussian"]
