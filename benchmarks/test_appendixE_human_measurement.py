"""Appendix E: measuring human interaction with the recording website.

Runs the paper's four recording tasks against the human subject and
derives the quantities the paper extracted: cursor kinematics, click
dwell and placement, scroll tick distances/pauses, and typing dwell and
flight times -- then re-fits HLISA's model parameters from the data
(the calibration loop the paper describes).
"""

import numpy as np
from conftest import print_table

from repro.analysis import click_metrics, scroll_metrics, typing_metrics
from repro.analysis.trajectory import per_movement_metrics
from repro.experiment import (
    HumanAgent,
    MovingClickTask,
    PointingTask,
    ScrollTask,
    TypingTask,
)
from repro.events.recorder import flight_times
from repro.humans.profile import HumanProfile
from repro.models.calibration import (
    calibrate_scroll_params,
    calibrate_typing_params,
)


def run_human_measurement():
    subject = HumanProfile(seed=2021)
    pointing = PointingTask(repetitions=3).run(HumanAgent(subject))
    clicking = MovingClickTask(clicks=100).run(HumanAgent(subject))
    scrolling = ScrollTask(page_height=30000).run(HumanAgent(subject))
    typing = TypingTask().run(HumanAgent(subject))
    return pointing, clicking, scrolling, typing


def test_appendixE_human_measurement(benchmark):
    pointing, clicking, scrolling, typing = benchmark.pedantic(
        run_human_measurement, rounds=1, iterations=1
    )

    movements = [
        m
        for m in per_movement_metrics(pointing.recorder.mouse_path())
        if m.chord_length > 300
    ]
    clicks = clicking.recorder.clicks()
    cm = click_metrics([c.position for c in clicks], [c.target_box for c in clicks])
    sm = scroll_metrics(
        scrolling.recorder.scroll_events(), scrolling.recorder.wheel_ticks()
    )
    strokes = typing.recorder.key_strokes()
    tm = typing_metrics(strokes)
    typing_params = calibrate_typing_params(strokes)
    scroll_params = calibrate_scroll_params(scrolling.recorder)

    lines = [
        f"mouse: {len(movements)} long movements, mean speed "
        f"{np.mean([m.mean_speed_px_s for m in movements]):.0f} px/s, "
        f"straightness {np.mean([m.straightness for m in movements]):.3f}",
        f"clicks (n=100): mean offset {cm.mean_radial_offset:.2f} of half-extent, "
        f"exact-centre {cm.exact_center_rate:.1%}, dwell "
        f"{np.mean([c.dwell_ms for c in clicks]):.0f} ms",
        f"scroll (30k px): {sm.n_wheel_events} wheel ticks of "
        f"{sm.median_scroll_step_px:.0f} px, median gap {sm.median_tick_gap_ms:.0f} ms, "
        f"long-gap fraction {sm.long_gap_fraction:.2f}",
        f"typing (100 chars): {tm.chars_per_minute:.0f} cpm, dwell "
        f"{tm.dwell_mean_ms:.0f}±{tm.dwell_std_ms:.0f} ms, flight "
        f"{tm.flight_mean_ms:.0f}±{tm.flight_std_ms:.0f} ms, rollover x{tm.rollover_count}",
        "",
        f"re-fitted HLISA params: key dwell {typing_params.dwell_mean_ms:.0f} ms, "
        f"flight {typing_params.flight_mean_ms:.0f} ms, wheel tick "
        f"{scroll_params.wheel_tick_px:.0f} px",
    ]
    print_table("Appendix E: human interaction measurements", lines)

    # The paper's qualitative claims about the human data.
    assert all(not m.is_straight or m.chord_length < 400 for m in movements)
    assert cm.exact_center_rate < 0.05  # "hardly ever in the centre"
    assert sm.median_scroll_step_px == 57.0  # fixed wheel tick
    assert sm.has_sweep_structure
    assert 100 < tm.chars_per_minute < 900
    assert tm.shifted_without_modifier == 0
    # The 30K px page was fully traversed via the wheel (scrollable
    # range = page height minus the viewport).
    assert sm.n_wheel_events >= (30000 - 768) / 57 - 2
    # Calibration recovered the generator's magnitudes.
    assert 60 <= typing_params.dwell_mean_ms <= 140
    assert scroll_params.wheel_tick_px == 57.0
