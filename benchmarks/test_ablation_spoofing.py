"""Ablation: spoofing-method choice vs expected field-study outcome.

Section 3.1 selects the proxy method from the Table 1 comparison.  This
ablation quantifies *why*, under an assumed deployment mix of spoof
detectors in the wild: structural probes (property order/count/keys and
prototype checks) are cheap and common in stealth-detection scripts,
whereas the ``toString`` probe of Listing 1 is obscure.  The expected
exposure of each method is the deployment-weighted sum of the probes it
trips -- and the proxy wins by an order of magnitude.
"""

from conftest import print_table

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.fingerprint import SideEffect, run_all_probes
from repro.spoofing import SpoofingMethod, apply_spoofing

#: Assumed fraction of spoof-aware sites deploying each probe (documented
#: modelling choice: structural checks are one-liners, the toString probe
#: is niche -- cf. the paper's observation that exactly one site caught
#: the proxy extension, on a subset of visits).
PROBE_DEPLOYMENT = {
    SideEffect.INCORRECT_PROPERTY_ORDER: 0.5,
    SideEffect.MODIFIED_LENGTH: 0.4,
    SideEffect.NEW_OBJECT_KEYS: 0.6,
    SideEffect.PROTO_WEBDRIVER_DEFINED: 0.3,
    SideEffect.UNNAMED_FUNCTIONS: 0.05,
}


def expected_exposure(side_effects) -> float:
    """P(at least one deployed probe fires) under independent deployment."""
    miss = 1.0
    for effect in side_effects:
        miss *= 1.0 - PROBE_DEPLOYMENT[effect]
    return 1.0 - miss


def run_ablation():
    exposure = {}
    for method in SpoofingMethod:
        window = Window(profile=NavigatorProfile(webdriver=True))
        apply_spoofing(window, method)
        result = run_all_probes(window)
        exposure[method] = (result.side_effects, expected_exposure(result.side_effects))
    return exposure


def test_ablation_spoofing_method_choice(benchmark):
    exposure = benchmark(run_ablation)
    lines = [f"{'method':18s} {'side effects':>13s} {'expected exposure':>18s}"]
    for method in SpoofingMethod:
        effects, p = exposure[method]
        lines.append(f"{method.name:18s} {len(effects):13d} {p:17.1%}")
    print_table("Ablation: spoofing method vs expected exposure", lines)

    ranked = sorted(SpoofingMethod, key=lambda m: exposure[m][1])
    assert ranked[0] is SpoofingMethod.PROXY  # the paper's choice wins
    assert exposure[SpoofingMethod.PROXY][1] < 0.1
    assert exposure[SpoofingMethod.DEFINE_PROPERTY][1] > 0.5
    assert exposure[SpoofingMethod.DEFINE_GETTER][1] > 0.5
    # setPrototypeOf sits in between: one uncommon-but-present probe.
    middle = exposure[SpoofingMethod.SET_PROTOTYPE_OF][1]
    assert exposure[SpoofingMethod.PROXY][1] < middle < exposure[SpoofingMethod.DEFINE_PROPERTY][1]
