"""Ablation: typing-model ingredients (dwell noise, Alves pauses, Shift).

Selenium's typing fails at level 1 (speed, dwell, modifiers).  Fixing the
pace but keeping constant timings fails at level 2 (rhythmless); adding
dwell/flight noise but no contextual pauses fails the pause detector on
long texts; dropping Shift synthesis keeps failing level 1.  Only the
full model passes.
"""

import numpy as np
from conftest import print_table

from repro.detection.artificial import (
    InhumanTypingSpeedDetector,
    MissingModifierDetector,
    ZeroKeyDwellDetector,
)
from repro.detection.deviation import PauselessTypingDetector, RhythmlessTypingDetector
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.models.typing_rhythm import TypingParams, TypingRhythm
from repro.webdriver.driver import make_browser_driver

TEXT = (
    "Measurements must not alter the measured. Web bots, however, leave "
    "traces. Careful models, like this one, remove them."
)

VARIANTS = ["selenium", "fixed-delay", "no-pauses", "no-shift", "full"]


def plan_for(variant, rng):
    if variant == "full":
        return TypingRhythm(rng).plan(TEXT)
    if variant == "no-pauses":
        params = TypingParams(
            pause_new_word_ms=0.0,
            pause_comma_ms=0.0,
            pause_sentence_ms=0.0,
            pause_open_sentence_ms=0.0,
        )
        return TypingRhythm(rng, params).plan(TEXT)
    if variant == "no-shift":
        plan = TypingRhythm(rng).plan(TEXT)
        return [(dt, kind, key) for dt, kind, key in plan if key != "Shift"]
    plan = []
    for char in TEXT:
        if variant == "selenium":
            plan.append((4.5, "down", char))
            plan.append((0.0, "up", char))
        else:  # fixed-delay: humanly possible pace, constant rhythm
            plan.append((60.0, "down", char))
            plan.append((40.0, "up", char))
    return plan


def record_variant(variant):
    driver = make_browser_driver()
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    area = driver.window.document.create_element("textarea", Box(10, 10, 400, 100))
    driver.window.document.set_focus(area)
    rng = np.random.default_rng(31)
    for dt, kind, key in plan_for(variant, rng):
        driver.window.clock.advance(max(dt, 0.0))
        if kind == "down":
            driver.pipeline.key_down(key)
        else:
            driver.pipeline.key_up(key)
    return recorder


def run_ablation():
    detectors = [
        InhumanTypingSpeedDetector(),
        ZeroKeyDwellDetector(),
        MissingModifierDetector(),
        RhythmlessTypingDetector(),
        PauselessTypingDetector(),
    ]
    outcome = {}
    for variant in VARIANTS:
        recorder = record_variant(variant)
        outcome[variant] = [d.name for d in detectors if d.observe(recorder).is_bot]
    return outcome


def test_ablation_typing(benchmark):
    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [f"{'variant':14s} flagged by"]
    for variant in VARIANTS:
        lines.append(f"{variant:14s} {', '.join(outcome[variant]) or '(nothing)'}")
    print_table("Ablation: typing-model ingredients", lines)

    assert "inhuman-typing-speed" in outcome["selenium"]
    assert "zero-key-dwell" in outcome["selenium"]
    assert "missing-modifiers" in outcome["selenium"]
    assert "rhythmless-typing" in outcome["fixed-delay"]
    assert "pauseless-typing" in outcome["no-pauses"]
    assert "missing-modifiers" in outcome["no-shift"]
    assert outcome["full"] == []
