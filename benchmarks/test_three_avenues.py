"""The paper's introduction, as one table: the three detection avenues.

    "Three avenues for web bot detection have been identified: browser
    fingerprinting, site traversal, and interaction characteristics ...
    mitigating site traversal cannot be solved generically ... However,
    neither browser fingerprint nor interaction characteristics are
    (typically) study-dependent.  Both aspects can thus be generically
    addressed."

The bench evaluates a crawler on all three avenues in four
configurations (bare Selenium, +spoofing, +HLISA, +both) and shows that
the two generic avenues are fixed by the paper's two contributions while
traversal is untouched by either.
"""

import numpy as np
from conftest import print_table

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.battery import DetectorBattery
from repro.detection.base import DetectionLevel
from repro.detection.fingerprint import run_all_probes
from repro.detection.traversal import TraversalDetector, crawler_traversal
from repro.experiment import BrowsingScenario, HLISAAgent, SeleniumAgent
from repro.spoofing import SpoofingExtension

PAGES = [f"https://crawl.example/{i:03d}" for i in range(25)]


def evaluate_configuration(spoofed: bool, humanised: bool):
    # Fingerprint avenue.
    window = Window(profile=NavigatorProfile(webdriver=True))
    if spoofed:
        SpoofingExtension().inject(window)
    fingerprint_flag = run_all_probes(window).webdriver_visible

    # Interaction avenue (a level-2 website).
    agent = HLISAAgent() if humanised else SeleniumAgent()
    recorder = BrowsingScenario(clicks=30).run(agent).recorder
    interaction_flag = DetectorBattery(DetectionLevel.DEVIATION).evaluate(recorder).is_bot

    # Traversal avenue: the study's visit order is the study's problem.
    traversal_flag, _ = TraversalDetector().observe(
        crawler_traversal(PAGES, rng=np.random.default_rng(3))
    )
    return fingerprint_flag, interaction_flag, traversal_flag


def test_three_detection_avenues(benchmark):
    def run_all():
        return {
            "bare Selenium": evaluate_configuration(False, False),
            "+ spoofing ext.": evaluate_configuration(True, False),
            "+ HLISA": evaluate_configuration(False, True),
            "+ both": evaluate_configuration(True, True),
        }

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'configuration':16s} {'fingerprint':>12s} {'interaction':>12s} {'traversal':>10s}"]
    for config, (fp, ia, tr) in outcome.items():
        lines.append(
            f"{config:16s} {'BOT' if fp else 'pass':>12s} "
            f"{'BOT' if ia else 'pass':>12s} {'BOT' if tr else 'pass':>10s}"
        )
    lines.append("")
    lines.append("traversal is study-dependent: no generic tool fixes it")
    print_table("The three detection avenues (paper, Section 1)", lines)

    assert outcome["bare Selenium"] == (True, True, True)
    assert outcome["+ spoofing ext."] == (False, True, True)
    assert outcome["+ HLISA"] == (True, False, True)
    assert outcome["+ both"] == (False, False, True)
