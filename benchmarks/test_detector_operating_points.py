"""Detector operating points: who catches whom, at what rate.

The quantitative backbone behind Fig. 3's qualitative ladder: every
detector's per-agent detection rate over repeated seeded sessions, with
the human false-positive rate as the hard constraint (Section 4.2:
"detectors must not be too strict or risk barring human visitors
entry").
"""

from conftest import print_table

from repro.analysis.detector_eval import evaluate_operating_points
from repro.detection.base import DetectionLevel


def test_detector_operating_points(benchmark):
    points = benchmark.pedantic(
        lambda: evaluate_operating_points(
            DetectionLevel.CONSISTENCY, runs_per_agent=5
        ),
        rounds=1,
        iterations=1,
    )
    lines = points.format_table().splitlines()
    lines.append("")
    lines.append(
        f"human false-positive rate over {points.runs_per_agent} sessions: "
        f"{points.false_positive_rate():.0%}"
    )
    print_table("Detector operating points (5 sessions per agent)", lines)

    assert points.false_positive_rate() == 0.0
    assert points.detection_rate("selenium") == 1.0
    assert points.detection_rate("naive") == 1.0
    assert points.detection_rate("hlisa") == 1.0  # by the consistency pair
    # HLISA's detection rests *solely* on consistency tracking.
    hlisa_hitters = {n for n, r in points.rates["hlisa"].items() if r > 0}
    assert hlisa_hitters <= {"distance-speed-coupling", "speed-accuracy-coupling"}
