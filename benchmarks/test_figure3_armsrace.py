"""Fig. 3: the arms-race model, validated as a detection matrix.

The paper's conceptual ladder predicts a lower-triangular matrix:
detector level d catches exactly the simulator levels below d, the
genuine human is never flagged, and HLISA (simulator level 2) falls to
consistency tracking -- "consistently defeating HLISA requires tracking
consistency of behaviour".
"""

from conftest import print_table

from repro.armsrace import Tournament
from repro.armsrace.levels import SimulatorLevel
from repro.detection.base import DetectionLevel


def test_figure3_arms_race_matrix(benchmark):
    result = benchmark.pedantic(lambda: Tournament().run(), rounds=1, iterations=1)
    lines = result.format_matrix().splitlines()
    lines.append("")
    lines.append("model prediction: strict lower triangle; human row empty")
    hlisa_evidence = result.evidence[
        (SimulatorLevel.HUMAN_DISTRIBUTION, DetectionLevel.CONSISTENCY)
    ]
    lines.append(f"what catches HLISA at level 3: {', '.join(hlisa_evidence)}")
    print_table("Figure 3: arms-race detection matrix", lines)

    assert result.matches_model(), result.mismatches()
    # The specific sentence of the paper, as data:
    hlisa_row = result.matrix[SimulatorLevel.HUMAN_DISTRIBUTION]
    assert not hlisa_row[DetectionLevel.ARTIFICIAL]
    assert not hlisa_row[DetectionLevel.DEVIATION]
    assert hlisa_row[DetectionLevel.CONSISTENCY]
