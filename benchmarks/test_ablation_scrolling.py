"""Ablation: scroll-cadence ingredients (Section 4.1, "Scrolling").

One programmatic jump is level-1 prey (teleport).  Fixed-interval 57 px
ticks fix the distance signature but keep a metronome cadence (level 2).
Noisy inter-tick pauses *without* the longer finger-repositioning break
still lack sweep structure.  The full HLISA cadence passes.
"""

import numpy as np
from conftest import print_table

from repro.detection.artificial import TeleportScrollDetector
from repro.detection.deviation import MetronomeScrollDetector
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.models.scroll_cadence import ScrollCadence, ScrollParams
from repro.webdriver.driver import make_browser_driver

VARIANTS = ["one-jump", "fixed-interval", "no-finger-pause", "full"]
DISTANCE = 57.0 * 45


def run_variant(variant):
    driver = make_browser_driver(page_height=6000)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    clock = driver.window.clock
    rng = np.random.default_rng(37)
    if variant == "one-jump":
        driver.pipeline.scroll_programmatic(0, DISTANCE)
    elif variant == "fixed-interval":
        for _ in range(int(DISTANCE / 57)):
            driver.window.scroll_by(0, 57.0)
            clock.advance(100.0)
    else:
        if variant == "no-finger-pause":
            params = ScrollParams(
                finger_pause_mean_ms=ScrollParams().tick_pause_mean_ms,
                finger_pause_sd_ms=ScrollParams().tick_pause_sd_ms,
            )
        else:
            params = ScrollParams()
        for pause, delta in ScrollCadence(rng, params).plan(DISTANCE):
            clock.advance(max(pause, 0.0))
            driver.window.scroll_by(0, delta)
    return recorder


def run_ablation():
    detectors = [TeleportScrollDetector(), MetronomeScrollDetector()]
    outcome = {}
    for variant in VARIANTS:
        recorder = run_variant(variant)
        outcome[variant] = [d.name for d in detectors if d.observe(recorder).is_bot]
    return outcome


def test_ablation_scrolling(benchmark):
    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [f"{'variant':17s} flagged by"]
    for variant in VARIANTS:
        lines.append(f"{variant:17s} {', '.join(outcome[variant]) or '(nothing)'}")
    print_table("Ablation: scroll-cadence ingredients", lines)

    assert "teleport-scroll" in outcome["one-jump"]
    assert "metronome-scroll" in outcome["fixed-interval"]
    assert "metronome-scroll" in outcome["no-finger-pause"]
    assert outcome["full"] == []
