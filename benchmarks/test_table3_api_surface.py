"""Table 3: the HLISA API surface.

The table enumerates every call HLISA offers.  The benchmark constructs a
chain, verifies each function exists with the documented arguments, and
executes the full API end-to-end against a live page.
"""

import inspect

from conftest import print_table

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.webdriver.driver import make_browser_driver

#: (function, required argument names, description) -- Table 3 verbatim.
TABLE3 = [
    ("perform", [], "Executes actions in a chain"),
    ("reset_actions", [], "Removes all actions from the current chain"),
    ("pause", ["duration"], "Pauses the execution of the action chain (in sec)"),
    ("move_to", ["x", "y"], "Moves the cursor from the current position to a given position"),
    ("move_by_offset", ["x", "y"], "Moves the cursor relative to the current position"),
    ("move_to_element", ["element"], "Moves the cursor to a position within an element's boundaries"),
    ("move_to_element_with_offset", ["element", "x", "y"], "Moves the cursor relative to an element's top-left corner"),
    ("move_to_element_outside_viewport", ["element"], "Scrolls element into the viewport before using move_to_element"),
    ("click", ["element"], "Clicks. If element is provided, first performs move_to_element"),
    ("click_and_hold", ["element"], "Same as click without release action"),
    ("release", ["element"], "Same as click without press action"),
    ("double_click", ["element"], "Same as click with an additional click shortly after the first"),
    ("send_keys", ["keys"], "Executes a human typing rhythm for the given keys"),
    ("send_keys_to_element", ["element", "keys"], "Selects the element, then executes the send_keys function"),
    ("scroll_by", ["x", "y"], "Scrolls the viewport till a distance is taken"),
    ("scroll_to", ["x", "y"], "Scrolls until the specified position is in the top left corner"),
    ("context_click", ["element"], "Same as click using a right mouse button"),
    ("drag_and_drop", ["element1", "element2"], "Press left button over element1, move to element2, release"),
    ("drag_and_drop_by_offset", ["element", "x", "y"], "Press on element, move to target offset, release"),
]


def check_api_surface():
    driver = make_browser_driver(page_height=4000)
    chain = HLISA_ActionChains(driver, seed=1)
    results = []
    for name, args, _ in TABLE3:
        method = getattr(chain, name, None)
        present = method is not None
        signature_ok = present and all(
            arg in inspect.signature(method).parameters for arg in args
        )
        results.append((name, present, signature_ok))
    return results


def exercise_full_api():
    """Run (nearly) every Table 3 call against a live page."""
    driver = make_browser_driver(page_height=4000)
    element = driver.find_element_by_id("submit")
    other = driver.find_element_by_id("cancel")
    area = driver.find_element_by_id("text_area")
    chain = HLISA_ActionChains(driver, seed=7)
    chain.move_to(300, 300)
    chain.move_by_offset(40, 10)
    chain.move_to_element(element)
    chain.move_to_element_with_offset(element, 12, 8)
    chain.pause(0.05)
    chain.click(element)
    chain.double_click(element)
    chain.context_click(element)
    chain.click_and_hold(element)
    chain.release()
    chain.drag_and_drop(element, other)
    chain.drag_and_drop_by_offset(element, 25, 5)
    chain.send_keys_to_element(area, "All of Table 3.")
    chain.scroll_by(0, 800)
    chain.scroll_to(0, 100)
    chain.perform()
    return driver


def test_table3_api_surface(benchmark):
    results = benchmark(check_api_surface)
    lines = [f"{'API function':36s} present  signature"]
    for name, present, signature_ok in results:
        lines.append(
            f"{name:36s} {'yes' if present else 'NO':>7s}  "
            f"{'ok' if signature_ok else 'BAD':>9s}"
        )
    print_table("Table 3: HLISA API surface", lines)
    assert all(present and sig for _, present, sig in results)


def test_table3_full_api_executes(benchmark):
    driver = benchmark.pedantic(exercise_full_api, rounds=1, iterations=1)
    area = driver.find_element_by_id("text_area")
    assert area.get_attribute("value") == "All of Table 3."
