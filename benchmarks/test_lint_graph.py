"""Whole-program lint pass: cost budget versus the per-module pass.

The graph pass (symbol table, call graph, taint, shard and bus rules)
runs serially in the parent after the per-module pool pass, so its cost
is pure added latency on every CI push.  The budget pinned here: the
whole-program pass must cost no more than 2x the per-module pass over
the full tree.  Results land in ``BENCH_lint.json`` (CI uploads it).
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.lint import (
    Baseline,
    build_project,
    collect_files,
    lint_project,
    run_lint,
)
from repro.obs import append_history

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
BENCH_PATH = Path("BENCH_lint.json")

#: Whole-program pass may cost at most this multiple of the per-module pass.
GRAPH_BUDGET_RATIO = 2.0


def _baseline() -> Baseline:
    path = REPO_ROOT / "lint-baseline.json"
    return Baseline.load(path) if path.exists() else Baseline.empty()


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_whole_program_pass_within_budget():
    files = collect_files([SRC], REPO_ROOT)
    baseline = _baseline()

    # Warm-up: pay import and pyc costs outside the measured runs.
    run_lint([SRC], root=REPO_ROOT, baseline=baseline, whole_program=False)

    per_module_report, per_module_s = _timed(
        lambda: run_lint(
            [SRC], root=REPO_ROOT, baseline=baseline, whole_program=False
        )
    )
    (graph_findings, graph_suppressed), graph_s = _timed(
        lambda: lint_project(files)
    )
    full_report, full_s = _timed(
        lambda: run_lint([SRC], root=REPO_ROOT, baseline=baseline)
    )

    assert full_report.exit_code == 0
    ratio = graph_s / per_module_s
    assert ratio <= GRAPH_BUDGET_RATIO, (
        f"whole-program pass took {graph_s:.3f}s = {ratio:.2f}x the "
        f"per-module pass ({per_module_s:.3f}s); budget is "
        f"{GRAPH_BUDGET_RATIO}x"
    )

    project = build_project(files)
    payload = {
        "files": per_module_report.files,
        "per_module_pass_s": round(per_module_s, 4),
        "whole_program_pass_s": round(graph_s, 4),
        "full_lint_s": round(full_s, 4),
        "graph_to_module_ratio": round(ratio, 4),
        "budget_ratio": GRAPH_BUDGET_RATIO,
        "call_graph_edges": len(project.call_graph.edges),
        "call_graph_nodes": len(project.call_graph.nodes()),
        "bus_event_classes": len(project.bus.concrete_events()),
        "bus_subscriptions": len(project.bus.subscriptions),
        "mutation_sites": len(project.mutation_sites),
        "whole_program_findings": sum(
            len(v) for v in graph_findings.values()
        ),
        "whole_program_suppressed": graph_suppressed,
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    append_history(Path("BENCH_HISTORY.jsonl"), [BENCH_PATH], label="lint-graph")
    print_table(
        "Whole-program lint pass vs per-module pass",
        [
            f"files linted          {payload['files']}",
            f"per-module pass       {per_module_s:.3f}s",
            f"whole-program pass    {graph_s:.3f}s ({ratio:.2f}x, "
            f"budget {GRAPH_BUDGET_RATIO}x)",
            f"full lint             {full_s:.3f}s",
            f"call-graph edges      {payload['call_graph_edges']}",
            f"mutation sites        {payload['mutation_sites']}",
        ],
    )
    print(f"\nwrote {BENCH_PATH}")


def test_perf_whole_program_pass(benchmark):
    files = collect_files([SRC], REPO_ROOT)
    findings, _suppressed = benchmark(lambda: lint_project(files))
    assert isinstance(findings, dict)
