"""Robustness ablation: does a recovered crawl bias the paper's results?

Krumnow et al. showed that unhandled crawler failure (hung loads,
crashed browsers, lost records) systematically biases web measurements.
This bench injects a 5% fault rate across all six fault types into the
full Section 3.2 field study, runs it under the resilient supervisor,
and checks the recovered crawl against a fault-free supervised run:

- visit coverage stays >= 99% despite the injected faults;
- every failed record carries its failure taxonomy (crawler failure is
  never silently conflated with a site reaction);
- the Table 2 screenshot categories match the fault-free run;
- per-site first-party error counts are statistically indistinguishable
  (Wilcoxon matched pairs) from the fault-free run, and the paper's
  baseline-vs-extension significance conclusion is preserved.
"""

from conftest import print_table

from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    evaluate_crawl_health,
    evaluate_http_errors,
    evaluate_screenshots,
    generate_population,
    visit_coverage,
)
from repro.faults import FaultPlan
from repro.spoofing import SpoofingExtension
from repro.stats.wilcoxon import wilcoxon_signed_rank

FAULT_RATE = 0.05
INSTANCES = 8


def make_crawlers():
    return (
        OpenWPMCrawler("OpenWPM", extension=None, instances=INSTANCES, seed=11),
        OpenWPMCrawler(
            "OpenWPM+extension",
            extension=SpoofingExtension(),
            instances=INSTANCES,
            seed=22,
        ),
    )


def run_ablation():
    population = generate_population()
    clean = {}
    faulty = {}
    supervisors = {}
    for crawler in make_crawlers():
        clean[crawler.name] = CrawlSupervisor(crawler).crawl(population)
        plan = FaultPlan.generate(
            population, INSTANCES, rate=FAULT_RATE, seed=crawler.seed
        )
        supervisor = CrawlSupervisor(crawler, plan=plan)
        faulty[crawler.name] = supervisor.crawl(population)
        supervisors[crawler.name] = supervisor
    return population, clean, faulty, supervisors


def paired_error_counts(result_a, result_b):
    """Per-domain first-party error counts on domains both crawls reached."""
    map_a = result_a.first_party_error_counts()
    map_b = result_b.first_party_error_counts()
    shared = sorted(set(map_a) & set(map_b))
    return (
        [float(map_a[d]) for d in shared],
        [float(map_b[d]) for d in shared],
    )


def test_robustness_crawl_recovery(benchmark):
    population, clean, faulty, supervisors = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    lines = [
        f"{'crawler':20s} {'coverage':>9s} {'recovered':>10s} {'recycles':>9s} "
        f"{'faults':>7s}"
    ]
    for name, supervisor in supervisors.items():
        health = evaluate_crawl_health(faulty[name])
        coverage = visit_coverage(faulty[name], population, INSTANCES)
        lines.append(
            f"{name:20s} {coverage:9.2%} {health.recovered_visits:10d} "
            f"{supervisor.stats.recycles:9d} {supervisor.stats.faults_seen:7d}"
        )
    lines.append("")
    lines.append("Table 2 categories, fault-free vs 5% faults (sites):")
    for name in clean:
        clean_eval = evaluate_screenshots(clean[name])
        faulty_eval = evaluate_screenshots(faulty[name])
        for (label, clean_sites, _), (_, faulty_sites, _) in zip(
            clean_eval.rows()[1:], faulty_eval.rows()[1:]
        ):
            lines.append(f"  {name:20s} {label:26s} {clean_sites:3d} {faulty_sites:3d}")
    print_table(
        f"Robustness ablation: {FAULT_RATE:.0%} injected faults, supervised recovery",
        lines,
    )

    for name, supervisor in supervisors.items():
        result = faulty[name]
        # >= 99% coverage despite faults on ~5% of visits.
        assert visit_coverage(result, population, INSTANCES) >= 0.99
        assert supervisor.stats.faults_seen > 0
        # Correct taxonomy on every record.
        for record in result.records:
            assert record.attempts >= 1 or record.failure_reason is not None
            if not record.reached:
                assert record.failure_reason is not None
            else:
                assert record.failure_reason is None

        # Table 2 site counts survive recovery exactly.
        clean_eval = evaluate_screenshots(clean[name])
        faulty_eval = evaluate_screenshots(faulty[name])
        for (label, clean_sites, _), (_, faulty_sites, _) in zip(
            clean_eval.rows()[1:], faulty_eval.rows()[1:]
        ):
            assert abs(clean_sites - faulty_sites) <= 1, (name, label)

        # First-party error counts indistinguishable from fault-free.
        counts_clean, counts_faulty = paired_error_counts(clean[name], result)
        try:
            comparison = wilcoxon_signed_rank(counts_clean, counts_faulty)
            assert not comparison.significant(0.05), comparison.p_value
        except ValueError:
            pass  # all differences zero: literally identical

    # The paper's conclusion is preserved under faults: the extension's
    # first-party error decrease stays significant, third-party not.
    faulty_http = evaluate_http_errors(
        faulty["OpenWPM"], faulty["OpenWPM+extension"]
    )
    clean_http = evaluate_http_errors(clean["OpenWPM"], clean["OpenWPM+extension"])
    assert clean_http.first_party_wilcoxon.significant(0.05)
    assert faulty_http.first_party_wilcoxon.significant(0.05)
    assert not faulty_http.third_party_wilcoxon.significant(0.05)
