"""Human-motor event generation throughput: scalar loops vs numpy kernels.

Measures events/s for the HLISA motor hot path at three depths and
records them under the ``hlisa_motor`` key of ``BENCH_hlisa.json``
(read-merge-write, same pattern as ``BENCH_crawl.json``; CI uploads the
file):

- **kernel**: the trajectory evaluation inner loop -- per-sample
  minimum-jerk easing + ``BezierTrajectory.at`` (the pre-PR formulation)
  vs the memoised easing grid + ``at_array``.  This is the loop the PR
  vectorised; the >= 5x target is asserted here.
- **generation**: full plan generation (pointing paths, HLISA paths,
  typing plans, scroll cadences) against the byte-identical scalar
  golden references.  RNG draws and list assembly are shared costs, so
  the end-to-end ratio is smaller; it is recorded, and must stay > 1.
- **dispatch**: ``InputPipeline.dispatch_batch`` vs the per-point
  ``clock.advance`` + ``move_mouse_to`` loop, driving a real DOM rig.

Throughput is wall-clock dependent; the byte-identity contract is what
the tier-1 suite asserts (``tests/test_motor_equivalence.py``).
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import print_table

from repro.browser.input_pipeline import InputPipeline
from repro.browser.window import Window
from repro.dom.document import Document
from repro.geometry import Box, Point
from repro.humans.pointing import HumanPointing
from repro.humans.profile import HumanProfile
from repro.humans.scrolling import HumanScrolling
from repro.models.bezier import BezierTrajectory, _eased_grid, hlisa_path
from repro.models.scalar_reference import (
    ScalarHumanPointing,
    ScalarHumanScrolling,
    ScalarTypingRhythm,
    scalar_hlisa_path,
)
from repro.models.typing_rhythm import TypingRhythm
from repro.obs import append_history

BENCH_PATH = Path("BENCH_hlisa.json")

#: The whole-kernel speedup the PR promises (events/s, vector / scalar).
KERNEL_SPEEDUP_TARGET = 5.0

TEXT = "The quick brown Fox jumps over the lazy dog. Again, and again! OK?" * 3


def _merge_bench(update):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data.update(update)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    append_history(Path("BENCH_HISTORY.jsonl"), [BENCH_PATH], label='hlisa-events-per-sec')


def _rate(fn, reps, warmup=20):
    """Events per second of ``fn`` (which returns an event count)."""
    for _ in range(warmup):
        fn()
    total = 0
    started = time.perf_counter()
    for _ in range(reps):
        total += fn()
    elapsed = time.perf_counter() - started
    return total / elapsed, total


# -- kernel: trajectory evaluation ---------------------------------------------


def _kernel_rates(n=150, reps=3000):
    """Trajectory *evaluation* only -- the loop the PR vectorised.

    List assembly and RNG draws are costs both formulations share; they
    are measured end-to-end under ``generation``.  Here the scalar side
    runs the pre-PR per-sample evaluation (easing polynomial,
    ``BezierTrajectory.at``, jitter application) and the vectorised side
    the memoised easing grid + ``at_array`` + elementwise jitter.
    """
    rng = np.random.default_rng(0)
    curve = BezierTrajectory(Point(0.0, 0.0), Point(800.0, 400.0), rng)
    jitter = rng.normal(0.0, 2.4, size=n)
    px, py = -0.447, 0.894

    def scalar_kernel():
        acc = 0.0
        for i in range(n):
            tau = i / (n - 1)
            eased = 10.0 * tau**3 - 15.0 * tau**4 + 6.0 * tau**5
            base = curve.at(eased)
            acc += base.x + float(jitter[i]) * px + base.y + float(jitter[i]) * py
        assert acc == acc  # keep the loop's results live
        return n

    def vector_kernel():
        xs, ys = curve.at_array(_eased_grid(n))
        xs = xs + jitter * px
        ys = ys + jitter * py
        assert xs[-1] == xs[-1] and ys[-1] == ys[-1]
        return n

    scalar_rate, _ = _rate(scalar_kernel, reps)
    vector_rate, _ = _rate(vector_kernel, reps)
    return scalar_rate, vector_rate


# -- generation: full plans ----------------------------------------------------


def _generation_workloads():
    profile = HumanProfile()

    def pointing(cls):
        def run():
            gen = cls(profile, np.random.default_rng(1))
            events = 0
            for i in range(12):
                events += len(
                    gen.path(Point(3.0, 7.0), Point(200.0 + 13 * i, 500.0 - 9 * i))
                )
            return events

        return run

    def hlisa(fn):
        def run():
            rng = np.random.default_rng(1)
            events = 0
            for i in range(12):
                events += len(
                    fn(Point(8.0, 8.0), Point(900.0 - 7 * i, 100.0 + 11 * i), rng)
                )
            return events

        return run

    def typing(cls):
        def run():
            return len(cls(np.random.default_rng(1)).plan(TEXT))

        return run

    def scrolling(cls):
        def run():
            return len(cls(profile, np.random.default_rng(1)).plan(3000.0))

        return run

    return {
        "pointing": (pointing(ScalarHumanPointing), pointing(HumanPointing)),
        "hlisa_path": (hlisa(scalar_hlisa_path), hlisa(hlisa_path)),
        "typing": (typing(ScalarTypingRhythm), typing(TypingRhythm)),
        "scrolling": (scrolling(ScalarHumanScrolling), scrolling(HumanScrolling)),
    }


# -- dispatch: batched pipeline delivery ---------------------------------------


def _make_rig():
    document = Document(1366.0, 2000.0)
    document.create_element("button", Box(100.0, 100.0, 200.0, 80.0), id="b1")
    document.create_element("a", Box(600.0, 300.0, 150.0, 40.0), id="l1")
    window = Window(document)
    return window, InputPipeline(window)


def _dispatch_rates(reps=150):
    path = HumanPointing(rng=np.random.default_rng(17)).path(
        Point(10.0, 10.0), Point(650.0, 320.0)
    )
    moves = []
    previous = 0.0
    for t, point in path:
        moves.append((max(t - previous, 0.0), point))
        previous = t

    def loop():
        window, pipeline = _make_rig()
        before = pipeline.events_dispatched
        for advance_ms, point in moves:
            window.clock.advance(advance_ms)
            pipeline.move_mouse_to(point.x, point.y)
        pipeline.move_mouse_to(moves[-1][1].x, moves[-1][1].y, force_event=True)
        return pipeline.events_dispatched - before

    def batch():
        _, pipeline = _make_rig()
        before = pipeline.events_dispatched
        pipeline.dispatch_batch(moves, repeat_final_forced=True)
        return pipeline.events_dispatched - before

    loop_rate, _ = _rate(loop, reps, warmup=10)
    batch_rate, _ = _rate(batch, reps, warmup=10)
    return loop_rate, batch_rate


def test_hlisa_motor_events_per_sec():
    scalar_kernel, vector_kernel = _kernel_rates()
    kernel_speedup = vector_kernel / scalar_kernel

    generation = {}
    for name, (slow, fast) in _generation_workloads().items():
        assert slow() == fast() != 0, f"{name}: workloads must emit the same events"
        slow_rate, _ = _rate(slow, 120)
        fast_rate, _ = _rate(fast, 120)
        generation[name] = {
            "scalar_events_per_s": round(slow_rate),
            "vectorized_events_per_s": round(fast_rate),
            "speedup": round(fast_rate / slow_rate, 2),
        }

    loop_rate, batch_rate = _dispatch_rates()

    _merge_bench(
        {
            "hlisa_motor": {
                "kernel": {
                    "scalar_events_per_s": round(scalar_kernel),
                    "vectorized_events_per_s": round(vector_kernel),
                    "speedup": round(kernel_speedup, 2),
                    "target_speedup": KERNEL_SPEEDUP_TARGET,
                },
                "generation": generation,
                "dispatch": {
                    "loop_events_per_s": round(loop_rate),
                    "batch_events_per_s": round(batch_rate),
                    "speedup": round(batch_rate / loop_rate, 2),
                },
            }
        }
    )
    print_table(
        "HLISA motor throughput (events/s, byte-identical output)",
        [
            f"kernel     scalar {scalar_kernel:12,.0f}  vector {vector_kernel:12,.0f}  "
            f"x{kernel_speedup:5.2f}",
        ]
        + [
            f"{name:10s} scalar {v['scalar_events_per_s']:12,.0f}  "
            f"vector {v['vectorized_events_per_s']:12,.0f}  x{v['speedup']:5.2f}"
            for name, v in generation.items()
        ]
        + [
            f"dispatch   loop   {loop_rate:12,.0f}  batch  {batch_rate:12,.0f}  "
            f"x{batch_rate / loop_rate:5.2f}",
            f"wrote {BENCH_PATH}",
        ],
    )

    assert kernel_speedup >= KERNEL_SPEEDUP_TARGET, (
        f"vectorized trajectory kernel is only {kernel_speedup:.2f}x the scalar "
        f"loop (target {KERNEL_SPEEDUP_TARGET}x)"
    )
    # End-to-end generation shares RNG draws and list assembly between the
    # two formulations (scroll plans are mostly scalar sweep/finger draws),
    # so the ratios are modest and noisy; guard against regression only.
    for name, entry in generation.items():
        assert entry["speedup"] > 0.8, f"{name}: vectorized plan generation regressed"
