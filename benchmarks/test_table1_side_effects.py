"""Table 1: detectable side effects by spoofing method.

Paper's table (x = side effect present):

    Side effect                              1  2  3  4
    Incorrect order of navigator properties  x  x  .  .
    Modified navigator._length               x  x  .  .
    New Object.keys(navigator)               x  x  .  .
    Defined navigator.__proto__.webdriver    .  .  x  .
    Unnamed window.navigator functions       .  .  .  x
"""

from conftest import print_table

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.fingerprint import SideEffect, run_all_probes
from repro.spoofing import SpoofingMethod, apply_spoofing

ROWS = [
    ("Incorrect order of navigator properties", SideEffect.INCORRECT_PROPERTY_ORDER),
    ("Modified navigator._length", SideEffect.MODIFIED_LENGTH),
    ("New Object.keys(navigator)", SideEffect.NEW_OBJECT_KEYS),
    ("Defined navigator.__proto__.webdriver", SideEffect.PROTO_WEBDRIVER_DEFINED),
    ("Unnamed window.navigator functions", SideEffect.UNNAMED_FUNCTIONS),
]

PAPER = {
    SideEffect.INCORRECT_PROPERTY_ORDER: (1, 2),
    SideEffect.MODIFIED_LENGTH: (1, 2),
    SideEffect.NEW_OBJECT_KEYS: (1, 2),
    SideEffect.PROTO_WEBDRIVER_DEFINED: (3,),
    SideEffect.UNNAMED_FUNCTIONS: (4,),
}


def run_table1():
    """Apply each method to a fresh automated browser; probe side
    effects."""
    observed = {}
    for method in SpoofingMethod:
        window = Window(profile=NavigatorProfile(webdriver=True))
        apply_spoofing(window, method)
        result = run_all_probes(window)
        assert result.webdriver_value is False  # spoof effective
        observed[method.value] = result.side_effects
    return observed


def test_table1_side_effects(benchmark):
    observed = benchmark(run_table1)
    lines = [f"{'Side effect':42s}  1  2  3  4   (paper)"]
    matches_paper = True
    for label, effect in ROWS:
        cells = "  ".join(
            "x" if effect in observed[m] else "." for m in (1, 2, 3, 4)
        )
        paper_cells = "  ".join(
            "x" if m in PAPER[effect] else "." for m in (1, 2, 3, 4)
        )
        if cells != paper_cells:
            matches_paper = False
        lines.append(f"{label:42s}  {cells}   ({paper_cells})")
    print_table("Table 1: spoofing side effects (measured vs paper)", lines)
    assert matches_paper, "side-effect matrix deviates from Table 1"
    # Section 3.1's summary claims:
    assert all(observed[m] for m in (1, 2, 3, 4)), "no method is side-effect free"
