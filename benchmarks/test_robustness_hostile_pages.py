"""Hostile-archetype ablation: watchdogs on vs off, plain pages unchanged.

Krumnow et al. document how pages that stall, interpose overlays, or
trap input silently bias large crawls when the tool has no recovery
story.  This bench crawls a synthetic population in which >= 20% of
sites are hostile (modal/cookie overlays, challenge interstitials,
hidden inputs, stalling pages -- split evenly) twice:

- **watchdogs on** (the default set): overlays are dismissed and the
  interrupted action chain replayed, challenges waited out, hidden
  inputs filled directly, stalls bounded at the step budget and
  retried.  Visit coverage must stay >= 95%.
- **watchdogs off** (``watchdogs=()``): every hostile mechanic degrades
  into its typed permanent failure, so coverage drops by (roughly) the
  hostile fraction -- the measurable bias an unprotected crawler ships.

On the *plain* Section 3.2 population the two configurations must be
*record-identical* -- watchdogs that never fire change nothing, so the
Table 2 screenshot categories and the Fig. 4 Wilcoxon conclusion are
unchanged by construction (both are still asserted explicitly).

The coverage split lands in ``BENCH_crawl.json`` (CI uploads it).
"""

import json
from pathlib import Path

from conftest import print_table

from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    SupervisorConfig,
    evaluate_http_errors,
    evaluate_screenshots,
    generate_population,
    hostile_population,
    visit_coverage,
)
from repro.obs import append_history
from repro.spoofing import SpoofingExtension

INSTANCES = 8
HOSTILE_SITES = 400
HOSTILE_FRACTION = 0.2
BENCH_PATH = Path("BENCH_crawl.json")


def supervised(name, *, extension=None, seed, watchdogs=None):
    crawler = OpenWPMCrawler(
        name, extension=extension, instances=INSTANCES, seed=seed
    )
    return CrawlSupervisor(
        crawler, config=SupervisorConfig(), watchdogs=watchdogs
    )


def run_hostile_ablation():
    population = hostile_population(
        n_sites=HOSTILE_SITES, seed=2021, hostile_fraction=HOSTILE_FRACTION
    )
    protected = supervised("hostile-on", seed=11)
    on_result = protected.crawl(population)
    unprotected = supervised("hostile-off", seed=11, watchdogs=())
    off_result = unprotected.crawl(population)
    return population, protected, on_result, unprotected, off_result


def run_plain_parity():
    """Both crawler configs on the plain population, watchdogs on/off."""
    population = generate_population()
    results = {}
    for name, extension, seed in (
        ("OpenWPM", None, 11),
        ("OpenWPM+extension", SpoofingExtension(), 22),
    ):
        on = supervised(name, extension=extension, seed=seed).crawl(population)
        off = supervised(
            name, extension=extension, seed=seed, watchdogs=()
        ).crawl(population)
        results[name] = (on, off)
    return population, results


def failure_breakdown(result):
    counts = {}
    for record in result.records:
        if not record.reached:
            reason = record.failure_reason or "unknown"
            counts[reason] = counts.get(reason, 0) + 1
    return dict(sorted(counts.items()))


def test_robustness_hostile_pages(benchmark):
    (
        (population, protected, on_result, unprotected, off_result),
        (plain_population, plain_results),
    ) = benchmark.pedantic(
        lambda: (run_hostile_ablation(), run_plain_parity()),
        rounds=1,
        iterations=1,
    )

    hostile_sites = sum(1 for s in population if s.hostile is not None)
    hostile_fraction = hostile_sites / len(population)
    coverage_on = visit_coverage(on_result, population, INSTANCES)
    coverage_off = visit_coverage(off_result, population, INSTANCES)

    lines = [
        f"hostile sites              {hostile_sites:4d} / {len(population)} "
        f"({hostile_fraction:.0%})",
        f"coverage, watchdogs on     {coverage_on:9.2%}",
        f"coverage, watchdogs off    {coverage_off:9.2%}",
        f"watchdog recycles (on)     {protected.stats.recycles:4d}",
        "",
        "failure breakdown, watchdogs off:",
    ]
    for reason, count in failure_breakdown(off_result).items():
        lines.append(f"  {reason:26s} {count:5d}")
    lines.append("")
    lines.append("failure breakdown, watchdogs on:")
    for reason, count in failure_breakdown(on_result).items():
        lines.append(f"  {reason:26s} {count:5d}")
    print_table("Hostile-archetype ablation (watchdogs on vs off)", lines)

    # >= 20% of the population is hostile, and the watchdogs recover
    # >= 95% coverage where the unprotected baseline measurably degrades.
    assert hostile_fraction >= 0.2
    assert coverage_on >= 0.95
    assert coverage_off < coverage_on
    assert coverage_off <= coverage_on - 0.1

    # Every lost visit carries its typed hostile taxonomy -- nothing is
    # silently conflated with a site reaction.
    off_reasons = failure_breakdown(off_result)
    for reason in ("modal-overlay", "challenge-interstitial", "hidden-input"):
        assert off_reasons.get(reason, 0) > 0, reason
    assert any(r.startswith("stalled") for r in off_reasons)

    # Plain population: watchdogs that never fire change nothing.
    # Record identity makes Table 2 / Fig. 4 invariance exact.
    for name, (on, off) in plain_results.items():
        assert json.dumps(on.to_dict()) == json.dumps(off.to_dict()), name
        on_rows = evaluate_screenshots(on).rows()
        off_rows = evaluate_screenshots(off).rows()
        assert on_rows == off_rows, name
    http_on = evaluate_http_errors(
        plain_results["OpenWPM"][0], plain_results["OpenWPM+extension"][0]
    )
    http_off = evaluate_http_errors(
        plain_results["OpenWPM"][1], plain_results["OpenWPM+extension"][1]
    )
    assert http_on.first_party_wilcoxon.significant(0.05)
    assert http_off.first_party_wilcoxon.significant(0.05)
    assert not http_on.third_party_wilcoxon.significant(0.05)

    # Read-merge-write: other benchmark jobs (shard scaling) share this
    # file, so never clobber their keys.
    bench = {}
    if BENCH_PATH.exists():
        bench = json.loads(BENCH_PATH.read_text())
    bench.update(
        {
            "population_sites": len(population),
            "hostile_sites": hostile_sites,
            "hostile_fraction": round(hostile_fraction, 4),
            "instances": INSTANCES,
            "coverage_watchdogs_on": round(coverage_on, 4),
            "coverage_watchdogs_off": round(coverage_off, 4),
            "recycles_watchdogs_on": protected.stats.recycles,
            "failures_watchdogs_on": failure_breakdown(on_result),
            "failures_watchdogs_off": failure_breakdown(off_result),
            "plain_population_record_identical": True,
        }
    )
    BENCH_PATH.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    append_history(
        Path("BENCH_HISTORY.jsonl"), [BENCH_PATH], label="hostile-pages"
    )
    print(f"\nwrote {BENCH_PATH}")
