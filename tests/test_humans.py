"""The generative human model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Box, Point
from repro.humans import (
    HumanClicking,
    HumanPointing,
    HumanProfile,
    HumanScrolling,
    HumanTyping,
    fitts_duration_ms,
)
from repro.humans.profile import SUBJECT_POOL
from repro.humans.typing import needs_shift

coords = st.floats(min_value=0.0, max_value=1500.0, allow_nan=False)


class TestFitts:
    def test_duration_grows_with_distance(self):
        assert fitts_duration_ms(800, 40) > fitts_duration_ms(200, 40)

    def test_duration_grows_with_smaller_targets(self):
        assert fitts_duration_ms(400, 10) > fitts_duration_ms(400, 80)

    def test_logarithmic_not_linear(self):
        """Doubling distance adds a constant, it does not double time."""
        t1 = fitts_duration_ms(200, 40)
        t2 = fitts_duration_ms(400, 40)
        t3 = fitts_duration_ms(800, 40)
        assert (t3 - t2) == pytest.approx(t2 - t1, rel=0.25)

    def test_zero_width_clamped(self):
        assert np.isfinite(fitts_duration_ms(100, 0))


class TestPointing:
    @given(coords, coords, coords, coords, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_path_starts_and_ends_exactly(self, x1, y1, x2, y2, seed):
        pointing = HumanPointing(HumanProfile(seed=seed))
        path = pointing.path(Point(x1, y1), Point(x2, y2))
        assert path[0][1].distance_to(Point(x1, y1)) < 1e-6
        assert path[-1][1].distance_to(Point(x2, y2)) < 1e-6

    @given(coords, coords, coords, coords, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_timestamps_monotone(self, x1, y1, x2, y2, seed):
        pointing = HumanPointing(HumanProfile(seed=seed))
        times = [t for t, _ in pointing.path(Point(x1, y1), Point(x2, y2))]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_path_is_curved(self):
        pointing = HumanPointing(HumanProfile(seed=1))
        path = pointing.path(Point(0, 0), Point(800, 100))
        from repro.geometry import path_length

        points = [p for _, p in path]
        assert path_length(points) > 1.005 * points[0].distance_to(points[-1])

    def test_duration_tracks_fitts(self):
        pointing = HumanPointing(HumanProfile(seed=2, fitts_noise_sigma=0.0))
        short = pointing.duration_ms(Point(0, 0), Point(100, 0), 40)
        long = pointing.duration_ms(Point(0, 0), Point(900, 0), 40)
        assert long > short

    def test_speed_under_human_limit(self):
        pointing = HumanPointing(HumanProfile(seed=3))
        path = pointing.path(Point(0, 0), Point(1000, 400))
        duration_s = path[-1][0] / 1000.0
        speed = 1077.0 / duration_s
        assert speed < 3000.0


class TestClicking:
    BOX = Box(200, 200, 90, 90)

    def test_click_inside_box(self):
        clicking = HumanClicking(HumanProfile(seed=1))
        for _ in range(300):
            assert self.BOX.contains(clicking.click_point(self.BOX))

    def test_click_hardly_ever_center(self):
        clicking = HumanClicking(HumanProfile(seed=2))
        center = self.BOX.center
        exact = sum(
            1
            for _ in range(300)
            if clicking.click_point(self.BOX).distance_to(center) < 0.5
        )
        assert exact <= 3

    def test_speed_factor_widens_scatter(self):
        slow = HumanClicking(HumanProfile(seed=3))
        fast = HumanClicking(HumanProfile(seed=3))
        slow_offsets = [
            slow.click_point(self.BOX, speed_factor=0.6).distance_to(self.BOX.center)
            for _ in range(400)
        ]
        fast_offsets = [
            fast.click_point(self.BOX, speed_factor=1.8).distance_to(self.BOX.center)
            for _ in range(400)
        ]
        assert np.mean(fast_offsets) > 1.3 * np.mean(slow_offsets)

    def test_dwell_positive(self):
        clicking = HumanClicking(HumanProfile(seed=4))
        assert all(clicking.dwell_ms() >= 25.0 for _ in range(100))

    def test_double_click_gap_under_environment_limit(self):
        clicking = HumanClicking(HumanProfile(seed=5))
        assert all(clicking.double_click_gap_ms() < 500.0 for _ in range(200))


class TestTyping:
    def test_needs_shift(self):
        assert needs_shift("A")
        assert needs_shift("!")
        assert not needs_shift("a")
        assert not needs_shift(",")
        assert not needs_shift(" ")

    def test_plan_balanced(self):
        typing = HumanTyping(HumanProfile(seed=1))
        balance = {}
        for _, kind, key in typing.plan("Try this, now. OK?"):
            balance[key] = balance.get(key, 0) + (1 if kind == "down" else -1)
        assert all(v == 0 for v in balance.values())

    def test_speed_in_human_range(self):
        typing = HumanTyping(HumanProfile(seed=2))
        cpm = typing.characters_per_minute("hello world this is a test of speed")
        assert 80 < cpm < 900

    def test_rollover_occurs_at_default_rate(self):
        typing = HumanTyping(HumanProfile(seed=3, rollover_prob=0.5))
        plan = typing.plan("abcdefghijabcdefghij")
        # Count interleavings: a down for key B before the up of key A.
        pressed = set()
        rollovers = 0
        for _, kind, key in plan:
            if kind == "down":
                if pressed:
                    rollovers += 1
                pressed.add(key)
            else:
                pressed.discard(key)
        assert rollovers > 0

    def test_no_rollover_when_disabled(self):
        typing = HumanTyping(HumanProfile(seed=3, rollover_prob=0.0))
        plan = typing.plan("abcdefghij")
        pressed = set()
        for _, kind, key in plan:
            if kind == "down":
                assert not pressed  # strictly sequential
                pressed.add(key)
            else:
                pressed.discard(key)


class TestScrolling:
    def test_covers_distance(self):
        scrolling = HumanScrolling(HumanProfile(seed=1))
        ticks = scrolling.plan(2000)
        assert sum(d for _, d in ticks) >= 2000

    def test_sweep_breaks_present(self):
        scrolling = HumanScrolling(HumanProfile(seed=2))
        pauses = [p for p, _ in scrolling.plan(57 * 80)][1:]
        assert max(pauses) > 2.0 * np.median(pauses)

    def test_negative_direction(self):
        scrolling = HumanScrolling(HumanProfile(seed=3))
        assert all(d == -57.0 for _, d in scrolling.plan(-500))


class TestSubjectPool:
    def test_three_subjects(self):
        assert len(SUBJECT_POOL) == 3

    def test_subjects_differ(self):
        a = SUBJECT_POOL["subject-a"]
        b = SUBJECT_POOL["subject-b"]
        assert a.fitts_b_ms != b.fitts_b_ms
        assert a.click_sigma_frac != b.click_sigma_frac

    def test_with_seed_copies(self):
        a = SUBJECT_POOL["subject-a"]
        c = a.with_seed(999)
        assert c.seed == 999
        assert c.fitts_b_ms == a.fitts_b_ms
        assert a.seed != 999
