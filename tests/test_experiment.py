"""Experiment harness: tasks, sessions and agents (Appendices D/E)."""

import pytest

from repro.experiment import (
    BrowsingScenario,
    HLISAAgent,
    HumanAgent,
    MovingClickTask,
    NaiveAgent,
    PointingTask,
    STANDARD_AGENTS,
    ScrollTask,
    Session,
    SeleniumAgent,
    TypingTask,
    TYPING_SAMPLE_TEXT,
)


class TestSession:
    def test_automated_session_has_driver(self):
        session = Session(automated=True)
        assert session.driver is not None
        assert session.window.navigator.get("webdriver") is True

    def test_human_session_has_no_driver(self):
        session = Session(automated=False)
        assert session.driver is None
        assert session.window.navigator.get("webdriver") is False
        with pytest.raises(RuntimeError):
            session.web_element(session.document.body)

    def test_human_environment_double_click(self):
        assert Session(automated=False).pipeline.double_click_interval_ms == 500.0
        assert Session(automated=True).pipeline.double_click_interval_ms == 600.0


class TestTasks:
    @pytest.mark.parametrize("agent_name", list(STANDARD_AGENTS))
    def test_pointing_task_produces_clicks(self, agent_name):
        result = PointingTask(repetitions=1).run(STANDARD_AGENTS[agent_name]())
        assert len(result.recorder.clicks()) == 2
        assert len(result.target_boxes) == 2

    @pytest.mark.parametrize("agent_name", list(STANDARD_AGENTS))
    def test_moving_click_task(self, agent_name):
        result = MovingClickTask(clicks=8).run(STANDARD_AGENTS[agent_name]())
        # ClickBot-style misses don't apply to standard agents: exactly 8.
        assert len(result.recorder.clicks()) == 8
        assert len(result.target_boxes) == 8

    def test_moving_click_boxes_differ(self):
        result = MovingClickTask(clicks=6).run(SeleniumAgent())
        corners = {(b.x, b.y) for b in result.target_boxes}
        assert len(corners) >= 5

    @pytest.mark.parametrize("agent_name", list(STANDARD_AGENTS))
    def test_scroll_task_reaches_bottom(self, agent_name):
        task = ScrollTask(page_height=3000)
        result = task.run(STANDARD_AGENTS[agent_name]())
        scrolls = result.recorder.scroll_events()
        assert scrolls, f"{agent_name} produced no scrolling"
        assert scrolls[-1].page_y >= result.scroll_distance - 60

    @pytest.mark.parametrize("agent_name", list(STANDARD_AGENTS))
    def test_typing_task_delivers_text(self, agent_name):
        result = TypingTask("Hi there, World.").run(STANDARD_AGENTS[agent_name]())
        strokes = [s for s in result.recorder.key_strokes() if len(s.key) == 1]
        assert len(strokes) == len("Hi there, World.")

    def test_typing_sample_text_covers_pause_contexts(self):
        assert "," in TYPING_SAMPLE_TEXT
        assert "." in TYPING_SAMPLE_TEXT
        assert any(c.isupper() for c in TYPING_SAMPLE_TEXT)

    def test_browsing_scenario_all_modalities(self):
        result = BrowsingScenario(clicks=10, scroll_distance=600).run(HLISAAgent())
        recorder = result.recorder
        assert recorder.clicks()
        assert recorder.key_strokes()
        assert recorder.scroll_events()
        assert recorder.mouse_path()


class TestAgentIdentity:
    def test_agent_names(self):
        assert SeleniumAgent().name == "selenium"
        assert NaiveAgent().name == "naive"
        assert HLISAAgent().name == "hlisa"
        assert HumanAgent().name == "human"

    def test_human_is_not_automated(self):
        assert HumanAgent().automated is False
        assert SeleniumAgent().automated is True
        assert HLISAAgent().automated is True

    def test_typed_value_lands_in_element(self):
        session = Session(automated=True)
        from repro.geometry import Box

        area = session.document.create_element("textarea", Box(100, 100, 300, 100), id="t")
        HLISAAgent().type_text(session, area, "abc")
        assert area.value == "abc"

    def test_human_agent_types_value_too(self):
        session = Session(automated=False)
        from repro.geometry import Box

        area = session.document.create_element("textarea", Box(100, 100, 300, 100), id="t")
        HumanAgent().type_text(session, area, "abc")
        assert area.value == "abc"
