"""Pointer-event twins, isTrusted, and the event-injection bot."""

import pytest

from repro.detection.artificial import (
    MissingPointerTwinDetector,
    UntrustedEventDetector,
)
from repro.detection.battery import DetectorBattery
from repro.detection.base import DetectionLevel
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.experiment import BrowsingScenario, HLISAAgent, HumanAgent
from repro.experiment.agents import InjectedEventsAgent
from repro.webdriver.driver import make_browser_driver


class TestPointerTwins:
    def test_mousemove_has_pointermove_twin(self):
        driver = make_browser_driver()
        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        driver.pipeline.move_mouse_to(100, 100, force_event=True)
        types = [e.type for e in recorder.events]
        assert types.index("pointermove") < types.index("mousemove")

    def test_mousedown_has_pointerdown_twin(self):
        driver = make_browser_driver()
        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        driver.pipeline.mouse_down()
        driver.pipeline.mouse_up()
        types = [e.type for e in recorder.events]
        assert types.index("pointerdown") < types.index("mousedown")
        assert types.index("pointerup") < types.index("mouseup")

    def test_twin_counts_match(self):
        driver = make_browser_driver()
        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        for i in range(5):
            driver.window.clock.advance(20)
            driver.pipeline.move_mouse_to(50 + i * 30, 80, force_event=True)
        assert len(recorder.of_type("pointermove")) == len(
            recorder.of_type("mousemove")
        )


class TestInjectedEventsAgent:
    @pytest.fixture(scope="class")
    def recording(self):
        return BrowsingScenario(clicks=8).run(InjectedEventsAgent()).recorder

    def test_all_events_untrusted(self, recording):
        assert recording.events
        assert all(not e.is_trusted for e in recording.events if e.type != "scroll")

    def test_untrusted_detector_fires(self, recording):
        verdict = UntrustedEventDetector().observe(recording)
        assert verdict.is_bot
        assert "untrusted" in verdict.reasons[0]

    def test_pointer_twin_detector_fires(self, recording):
        assert MissingPointerTwinDetector().observe(recording).is_bot

    def test_level1_battery_destroys_it(self, recording):
        report = DetectorBattery(DetectionLevel.ARTIFICIAL).evaluate(recording)
        assert report.is_bot
        assert "untrusted-events" in report.triggered_names()

    def test_typing_sets_value_directly(self):
        from repro.experiment.session import Session
        from repro.geometry import Box

        session = Session(automated=True)
        area = session.document.create_element("textarea", Box(10, 10, 200, 60))
        InjectedEventsAgent().type_text(session, area, "fast")
        assert area.value == "fast"


class TestRealAgentsPass:
    @pytest.mark.parametrize("agent_factory", [HLISAAgent, HumanAgent])
    def test_trusted_agents_not_flagged(self, agent_factory):
        recorder = BrowsingScenario(clicks=6).run(agent_factory()).recorder
        assert not UntrustedEventDetector().observe(recorder).is_bot
        assert not MissingPointerTwinDetector().observe(recorder).is_bot

    def test_selenium_events_are_trusted(self):
        """Selenium synthesises real input: trusted events, with twins.
        (That is why fingerprint/behaviour detection is needed at all.)"""
        from repro.experiment import SeleniumAgent

        recorder = BrowsingScenario(clicks=6).run(SeleniumAgent()).recorder
        assert not UntrustedEventDetector().observe(recorder).is_bot
        assert not MissingPointerTwinDetector().observe(recorder).is_bot
