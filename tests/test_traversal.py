"""The traversal detection avenue (study-dependent, un-fixable by HLISA)."""

import numpy as np
import pytest

from repro.detection.traversal import (
    TraversalDetector,
    crawler_traversal,
    human_traversal,
    traversal_metrics,
)

PAGES = [f"https://site.example/page-{i:02d}" for i in range(20)]


class TestMetrics:
    def test_needs_three_visits(self):
        with pytest.raises(ValueError):
            traversal_metrics([("a", 1.0), ("b", 1.0)])

    def test_systematic_order_detected(self):
        metrics = traversal_metrics([(p, 1000.0) for p in PAGES])
        assert metrics.order_monotonicity == 1.0
        assert metrics.revisit_rate == 0.0

    def test_reverse_order_is_also_systematic(self):
        metrics = traversal_metrics([(p, 1000.0) for p in reversed(PAGES)])
        assert metrics.order_monotonicity == -1.0

    def test_revisit_rate(self):
        visits = [("a", 1.0), ("b", 1.0), ("a", 1.0), ("c", 1.0)]
        assert traversal_metrics(visits).revisit_rate == 0.25

    def test_dwell_statistics(self):
        visits = [(p, 1000.0) for p in PAGES[:10]]
        metrics = traversal_metrics(visits)
        assert metrics.dwell_cv == 0.0
        assert metrics.dwell_p95_over_median == 1.0


class TestDetector:
    def test_crawler_traversal_flagged(self):
        detector = TraversalDetector()
        is_bot, reasons = detector.observe(crawler_traversal(PAGES))
        assert is_bot
        assert any("systematic" in r for r in reasons)
        assert any("metronomic" in r for r in reasons)

    def test_human_traversal_passes(self):
        detector = TraversalDetector()
        is_bot, reasons = detector.observe(
            human_traversal(PAGES, n_visits=40, rng=np.random.default_rng(5))
        )
        assert not is_bot, reasons

    def test_short_sequences_yield_no_verdict(self):
        detector = TraversalDetector()
        assert detector.observe(crawler_traversal(PAGES[:5])) == (False, [])

    def test_hlisa_does_not_change_traversal(self):
        """The paper's structural claim: interaction humanisation cannot
        fix traversal -- the crawl order is the study's, not the API's."""
        detector = TraversalDetector()
        # An HLISA-driven crawler still works through its list in order;
        # only the *within-page* interaction differs.
        hlisa_crawl = crawler_traversal(PAGES, rng=np.random.default_rng(9))
        is_bot, _ = detector.observe(hlisa_crawl)
        assert is_bot

    def test_randomised_order_with_human_dwell_passes(self):
        """What an experiment-level mitigation would have to do: both
        randomise the order *and* humanise dwell/revisits."""
        rng = np.random.default_rng(11)
        pages = list(PAGES)
        rng.shuffle(pages)
        visits = []
        for page in pages:
            visits.append((page, float(rng.lognormal(np.log(9000), 0.8))))
            if rng.random() < 0.3:
                visits.append((pages[0], float(rng.lognormal(np.log(4000), 0.6))))
        detector = TraversalDetector()
        is_bot, reasons = detector.observe(visits)
        assert not is_bot, reasons
