"""Event taxonomy, dispatch and recording."""

from repro.dom.document import Document
from repro.dom.element import Element
from repro.events import (
    ALL_INTERACTION_EVENTS,
    COVERING_SET,
    COVERING_SET_EVENTS,
    DOCUMENT_EVENTS,
    ELEMENT_EVENTS,
    Event,
    EventRecorder,
    EventTarget,
    WINDOW_EVENTS,
)
from repro.events.recorder import flight_times
from repro.geometry import Box


class TestTaxonomy:
    def test_document_events_as_printed(self):
        assert "pointermove" in DOCUMENT_EVENTS
        assert "visibilitychange" in DOCUMENT_EVENTS
        assert len(DOCUMENT_EVENTS) == 36

    def test_element_events_as_printed(self):
        assert "dblclick" in ELEMENT_EVENTS
        assert len(ELEMENT_EVENTS) == 16

    def test_window_events(self):
        assert WINDOW_EVENTS == ("resize", "focus")

    def test_all_events_distinct(self):
        assert len(ALL_INTERACTION_EVENTS) == len(set(ALL_INTERACTION_EVENTS))

    def test_covering_set_within_taxonomy(self):
        assert set(COVERING_SET_EVENTS) <= set(ALL_INTERACTION_EVENTS)

    def test_covering_set_groups(self):
        """Appendix D's per-category grouping."""
        assert COVERING_SET["mouse_movement"] == ("mousemove",)
        assert set(COVERING_SET["mouse_clicking"]) == {"dblclick", "mousedown", "mouseup"}
        assert set(COVERING_SET["scrolling"]) == {"scroll", "wheel"}
        assert set(COVERING_SET["typing"]) == {"keydown", "keyup"}


class TestDispatch:
    def test_listener_invoked(self):
        target = EventTarget()
        seen = []
        target.add_event_listener("click", seen.append)
        target.dispatch_event(Event("click", timestamp=0.0))
        assert len(seen) == 1

    def test_remove_listener(self):
        target = EventTarget()
        seen = []
        target.add_event_listener("click", seen.append)
        target.remove_event_listener("click", seen.append)
        target.dispatch_event(Event("click", timestamp=0.0))
        assert seen == []

    def test_remove_absent_listener_is_noop(self):
        EventTarget().remove_event_listener("click", lambda e: None)

    def test_listener_count(self):
        target = EventTarget()
        target.add_event_listener("click", lambda e: None)
        target.add_event_listener("keydown", lambda e: None)
        assert target.listener_count("click") == 1
        assert target.listener_count() == 2

    def test_bubbling_to_document_and_window(self):
        document = Document()
        element = document.create_element("div", Box(0, 0, 10, 10))

        class FakeWindow(EventTarget):
            pass

        window = FakeWindow()
        document.window = window
        path = []
        element.add_event_listener("click", lambda e: path.append("element"))
        document.add_event_listener("click", lambda e: path.append("document"))
        window.add_event_listener("click", lambda e: path.append("window"))
        element.dispatch_event(Event("click", timestamp=0.0))
        assert path == ["element", "document", "window"]

    def test_mouseenter_does_not_bubble(self):
        document = Document()
        element = document.create_element("div", Box(0, 0, 10, 10))
        seen = []
        document.add_event_listener("mouseenter", lambda e: seen.append(e))
        element.dispatch_event(Event("mouseenter", timestamp=0.0))
        assert seen == []

    def test_target_set_on_dispatch(self):
        target = EventTarget()
        event = Event("click", timestamp=0.0)
        target.dispatch_event(event)
        assert event.target is target


class TestRecorder:
    def _make(self):
        document = Document()
        element = document.create_element("button", Box(0, 0, 100, 40), id="b")
        recorder = EventRecorder().attach(document)
        return document, element, recorder

    def test_records_only_requested_types(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=1.0))
        element.dispatch_event(Event("pointerdown", timestamp=1.0))  # not in set
        assert [e.type for e in recorder.events] == ["mousedown"]

    def test_detach_stops_recording(self):
        document, element, recorder = self._make()
        recorder.detach()
        element.dispatch_event(Event("mousedown", timestamp=1.0))
        assert len(recorder) == 0

    def test_clear(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=1.0))
        recorder.clear()
        assert len(recorder) == 0

    def test_mouse_path(self):
        document, element, recorder = self._make()
        for i in range(3):
            element.dispatch_event(
                Event("mousemove", timestamp=float(i), client_x=i * 10.0, client_y=5.0)
            )
        assert recorder.mouse_path() == [(0.0, 0.0, 5.0), (1.0, 10.0, 5.0), (2.0, 20.0, 5.0)]

    def test_click_pairing_and_dwell(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=10.0, button=0, client_x=3, client_y=4))
        element.dispatch_event(Event("mouseup", timestamp=95.0, button=0))
        clicks = recorder.clicks()
        assert len(clicks) == 1
        assert clicks[0].dwell_ms == 85.0
        assert clicks[0].position == (3, 4)

    def test_unmatched_mousedown_omitted(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=10.0, button=0))
        assert recorder.clicks() == []

    def test_click_pairing_per_button(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=0.0, button=0))
        element.dispatch_event(Event("mousedown", timestamp=5.0, button=2))
        element.dispatch_event(Event("mouseup", timestamp=50.0, button=2))
        element.dispatch_event(Event("mouseup", timestamp=80.0, button=0))
        clicks = recorder.clicks()
        assert {c.button for c in clicks} == {0, 2}

    def test_keystroke_pairing_with_rollover(self):
        """A key released after the next key was pressed still pairs."""
        document, element, recorder = self._make()
        element.dispatch_event(Event("keydown", timestamp=0.0, key="a"))
        element.dispatch_event(Event("keydown", timestamp=60.0, key="b"))  # rollover
        element.dispatch_event(Event("keyup", timestamp=80.0, key="a"))
        element.dispatch_event(Event("keyup", timestamp=150.0, key="b"))
        strokes = recorder.key_strokes()
        assert [s.key for s in strokes] == ["a", "b"]
        assert strokes[0].dwell_ms == 80.0
        assert flight_times(strokes) == [-20.0]  # negative = rollover

    def test_repeated_key_pairing_fifo(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("keydown", timestamp=0.0, key="l"))
        element.dispatch_event(Event("keyup", timestamp=50.0, key="l"))
        element.dispatch_event(Event("keydown", timestamp=100.0, key="l"))
        element.dispatch_event(Event("keyup", timestamp=160.0, key="l"))
        strokes = recorder.key_strokes()
        assert [s.dwell_ms for s in strokes] == [50.0, 60.0]

    def test_time_span(self):
        document, element, recorder = self._make()
        element.dispatch_event(Event("mousedown", timestamp=10.0))
        element.dispatch_event(Event("mouseup", timestamp=250.0))
        assert recorder.time_span() == 240.0
