"""Hostile-page archetypes: DOM furniture, visit semantics, populations.

The four archetypes (modal/cookie overlays, challenge interstitials,
hidden inputs, stalling pages) are real pages a field crawler meets;
these tests pin their mechanics at every layer -- the live-DOM
furniture, the graceful-degradation semantics in ``simulate_visit``,
the hostile-population generator, and the watchdogs-on/off coverage
split the robustness ablation measures at scale.
"""

import numpy as np
import pytest

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.crawl import (
    CrawlSupervisor,
    FailureReason,
    HostileArchetype,
    OpenWPMCrawler,
    PopulationConfig,
    SiteConfig,
    SupervisorConfig,
    generate_population,
    hostile_population,
    simulate_visit,
    visit_coverage,
)
from repro.dom.hostile import (
    CHALLENGE_ID,
    HIDDEN_INPUT_ID,
    OVERLAY_ACCEPT_ID,
    OVERLAY_ID,
    has_hostile_furniture,
    install_challenge,
    install_hidden_input,
    install_overlay,
)
from repro.geometry import Point


def fresh_document():
    return Window(profile=NavigatorProfile(webdriver=True)).document


class TestHostileFurniture:
    def test_overlay_covers_the_page_and_wins_hit_tests(self):
        document = fresh_document()
        overlay = install_overlay(document, kind="cookie-banner")
        assert document.get_element_by_id(OVERLAY_ID) is overlay
        assert document.get_element_by_id(OVERLAY_ACCEPT_ID) is not None
        hit = document.element_at(Point(document.width / 2.0, 100.0))
        assert hit.id in (OVERLAY_ID, OVERLAY_ACCEPT_ID)
        assert has_hostile_furniture(document)

    def test_dismissing_the_overlay_restores_the_page(self):
        document = fresh_document()
        overlay = install_overlay(document)
        overlay.remove()
        assert document.get_element_by_id(OVERLAY_ID) is None
        assert document.get_element_by_id(OVERLAY_ACCEPT_ID) is None
        assert not has_hostile_furniture(document)
        hit = document.element_at(Point(document.width / 2.0, 100.0))
        assert hit.id not in (OVERLAY_ID, OVERLAY_ACCEPT_ID)

    def test_reinstall_replaces_instead_of_accumulating(self):
        document = fresh_document()
        first = install_overlay(document)
        second = install_overlay(document)
        assert first is not second
        assert document.get_element_by_id(OVERLAY_ID) is second
        # The first instance is fully detached: removing the second
        # leaves no hostile furniture behind.
        second.remove()
        assert not has_hostile_furniture(document)

    def test_challenge_interstitial_installs_and_clears(self):
        document = fresh_document()
        interstitial = install_challenge(document)
        assert document.get_element_by_id(CHALLENGE_ID) is interstitial
        interstitial.remove()
        assert document.get_element_by_id(CHALLENGE_ID) is None

    def test_hidden_input_has_no_pointer_presence(self):
        document = fresh_document()
        field = install_hidden_input(document)
        assert not field.visible
        assert field.box is None
        assert document.get_element_by_id(HIDDEN_INPUT_ID) is field
        # Only a scripted direct fill can reach it.
        field.value = "crawler@example.org"
        assert field.value


def hostile_site(archetype, intensity=0.4, rank=0):
    return SiteConfig(
        rank=rank,
        domain=f"hostile-{rank}.example",
        hostile=archetype,
        hostile_intensity=intensity,
    )


def visit(site, seed=1):
    return simulate_visit(
        site,
        extension=None,
        visit_index=0,
        rng=np.random.default_rng(seed),
        per_visit_failure=0.0,
    )


class TestUnwatchedVisitSemantics:
    """Without a bus (no watchdogs), every archetype degrades into its
    typed permanent failure -- never an exception."""

    @pytest.mark.parametrize(
        "archetype, reason",
        [
            (HostileArchetype.MODAL_OVERLAY, FailureReason.MODAL_OVERLAY),
            (
                HostileArchetype.CHALLENGE_INTERSTITIAL,
                FailureReason.CHALLENGE_INTERSTITIAL,
            ),
            (HostileArchetype.HIDDEN_INPUT, FailureReason.HIDDEN_INPUT),
        ],
    )
    def test_obstruction_degrades_to_typed_failure(self, archetype, reason):
        record = visit(hostile_site(archetype))
        assert not record.reached
        assert record.failure_reason == reason
        assert FailureReason.is_permanent(record.failure_reason)

    def test_stall_manifests_with_its_intensity(self):
        always = visit(hostile_site(HostileArchetype.STALLING, intensity=1.0))
        assert always.failure_reason == FailureReason.STALLED_UNBOUNDED
        never = visit(hostile_site(HostileArchetype.STALLING, intensity=0.0))
        assert never.reached

    def test_plain_site_rng_stream_is_untouched(self):
        # A hostile site draws exactly one extra value (the stall roll)
        # only on the STALLING path; plain sites must consume the same
        # stream they always did, or Table 2 / Fig. 4 shift.
        plain = SiteConfig(rank=0, domain="plain.example")
        a = simulate_visit(
            plain,
            extension=None,
            visit_index=0,
            rng=np.random.default_rng(5),
            per_visit_failure=0.0,
        )
        b = simulate_visit(
            plain,
            extension=None,
            visit_index=0,
            rng=np.random.default_rng(5),
            per_visit_failure=0.0,
        )
        assert a.to_dict() == b.to_dict()


class TestHostilePopulation:
    def test_quota_composition_and_fraction(self):
        population = hostile_population(n_sites=200, seed=2021)
        hostile = [site for site in population if site.hostile is not None]
        assert len(hostile) / len(population) >= 0.2
        by_archetype = {}
        for site in hostile:
            by_archetype[site.hostile] = by_archetype.get(site.hostile, 0) + 1
        assert set(by_archetype) == set(HostileArchetype)
        assert len(set(by_archetype.values())) == 1  # split evenly

    def test_hostile_sites_are_reachable_plain_sites(self):
        population = hostile_population(n_sites=200, seed=2021)
        for site in population:
            if site.hostile is not None:
                assert not site.unreachable
                assert site.detector is None

    def test_enabling_hostile_counts_perturbs_nothing_else(self):
        base = generate_population(PopulationConfig(n_sites=120, seed=9))
        spiked = generate_population(
            PopulationConfig(
                n_sites=120,
                seed=9,
                n_modal_overlay_sites=6,
                n_challenge_sites=6,
                n_hidden_input_sites=6,
                n_stalling_sites=6,
            )
        )
        assert len(base) == len(spiked)
        for plain, hostile in zip(base, spiked):
            assert plain.domain == hostile.domain
            assert plain.unreachable == hostile.unreachable
            assert plain.breakage == hostile.breakage
            assert plain.ad_slots == hostile.ad_slots
            assert plain.has_video == hostile.has_video
            assert (plain.detector is None) == (hostile.detector is None)
            assert plain.hostile is None

    def test_quota_beyond_eligible_sites_is_an_error(self):
        with pytest.raises(ValueError):
            generate_population(
                PopulationConfig(n_sites=10, seed=1, n_stalling_sites=50)
            )

    def test_deterministic_for_a_seed(self):
        a = hostile_population(n_sites=80, seed=4)
        b = hostile_population(n_sites=80, seed=4)
        assert [(s.domain, s.hostile, s.hostile_intensity) for s in a] == [
            (s.domain, s.hostile, s.hostile_intensity) for s in b
        ]


class TestCoverageAblation:
    def supervised(self, watchdogs=None):
        crawler = OpenWPMCrawler("hostile", instances=2, seed=13)
        return CrawlSupervisor(
            crawler,
            config=SupervisorConfig(per_visit_failure=0.0),
            watchdogs=watchdogs,
        )

    def test_watchdogs_recover_most_hostile_visits(self):
        population = hostile_population(n_sites=80, seed=6)
        protected = self.supervised()
        covered = visit_coverage(
            protected.crawl(population), population, instances=2
        )
        unprotected = self.supervised(watchdogs=())
        degraded = visit_coverage(
            unprotected.crawl(population), population, instances=2
        )
        assert covered >= 0.95
        assert degraded < covered
        # The unprotected crawler loses (roughly) the hostile fraction.
        assert degraded <= 0.9
