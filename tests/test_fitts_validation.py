"""Empirical validation of the human model against Fitts' law [8].

The paper cites Fitts (1954) as the HCI foundation; the generative human
must actually obey it *as observed through the event API*, because that
is what the level-3 distance-speed detector assumes.
"""

import math

import numpy as np
import pytest

from repro.analysis.trajectory import trajectory_metrics
from repro.experiment import Session
from repro.experiment.agents import HumanAgent
from repro.geometry import Box
from repro.humans.profile import HumanProfile


def observed_movement_times(profile, distances, width=60.0, repeats=4):
    """Click targets at controlled distances; measure movement times."""
    times = {d: [] for d in distances}
    for repeat in range(repeats):
        session = Session(automated=False)
        agent = HumanAgent(profile.with_seed(profile.seed + repeat * 101))
        start_x = 60.0
        session.pipeline.pointer = session.pipeline.pointer.__class__(start_x, 400.0)
        target = session.document.create_element(
            "button", Box(0, 370, width, width), id="t"
        )
        for distance in distances:
            # Park the cursor, then place the target `distance` away.
            session.pipeline.move_mouse_to(start_x, 400.0, force_event=True)
            session.clock.advance(400.0)
            target.box = Box(start_x + distance - width / 2, 370.0, width, width)
            n_before = len(session.recorder.mouse_path())
            agent.click_element(session, target)
            path = session.recorder.mouse_path()[n_before:]
            if len(path) >= 2:
                times[distance].append(path[-1][0] - path[0][0])
            session.clock.advance(400.0)
            session.pipeline.move_mouse_to(start_x, 400.0, force_event=True)
            session.clock.advance(400.0)
    return {d: float(np.mean(v)) for d, v in times.items() if v}


class TestFittsLaw:
    def test_movement_time_grows_logarithmically(self):
        profile = HumanProfile(seed=42, fitts_noise_sigma=0.05, correction_prob=0.0)
        distances = [150.0, 300.0, 600.0, 1100.0]
        times = observed_movement_times(profile, distances)
        assert len(times) == len(distances)
        # Times increase with distance...
        ordered = [times[d] for d in distances]
        assert ordered == sorted(ordered)
        # ...but sub-linearly: quadrupling distance far less than
        # quadruples time (the logarithm at work).
        assert times[600.0] / times[150.0] < 2.5

    def test_regression_recovers_fitts_slope(self):
        """Regressing observed MT on the index of difficulty recovers a
        slope near the profile's fitts_b."""
        profile = HumanProfile(seed=7, fitts_noise_sigma=0.05, correction_prob=0.0)
        width = 60.0
        distances = [120.0, 250.0, 450.0, 800.0, 1150.0]
        times = observed_movement_times(profile, distances, width=width, repeats=5)
        ids = np.array([math.log2(d / width + 1.0) for d in distances])
        mts = np.array([times[d] for d in distances])
        slope, intercept = np.polyfit(ids, mts, 1)
        assert slope == pytest.approx(profile.fitts_b_ms, rel=0.35)
        assert intercept == pytest.approx(profile.fitts_a_ms, abs=120.0)

    def test_smaller_targets_take_longer(self):
        profile = HumanProfile(seed=9, fitts_noise_sigma=0.05, correction_prob=0.0)
        big = observed_movement_times(profile, [500.0], width=120.0)[500.0]
        small = observed_movement_times(profile, [500.0], width=24.0)[500.0]
        assert small > big
