"""JavaScript object model semantics (the substrate of Table 1)."""

import pytest

from repro.jsobject import (
    JSObject,
    JSTypeError,
    PropertyDescriptor,
    UNDEFINED,
    for_in_names,
    get_own_property_names,
    object_keys,
)


def make_chain():
    """proto <- obj with a couple of properties on each."""
    proto = JSObject()
    proto.define_property("inherited", PropertyDescriptor.data("from-proto"))
    obj = JSObject(proto=proto)
    obj.define_property("own", PropertyDescriptor.data("mine"))
    return proto, obj


class TestPropertyAccess:
    def test_get_own(self):
        _, obj = make_chain()
        assert obj.get("own") == "mine"

    def test_get_inherited(self):
        _, obj = make_chain()
        assert obj.get("inherited") == "from-proto"

    def test_get_missing_is_undefined(self):
        _, obj = make_chain()
        assert obj.get("nope") is UNDEFINED
        assert not obj.get("nope")

    def test_accessor_getter_invoked_with_receiver(self):
        received = []
        obj = JSObject()
        obj.define_property(
            "prop",
            PropertyDescriptor.accessor(get=lambda this: received.append(this) or 42),
        )
        assert obj.get("prop") == 42
        assert received == [obj]

    def test_inherited_accessor_receiver_is_instance(self):
        proto = JSObject()
        proto.define_property(
            "prop", PropertyDescriptor.accessor(get=lambda this: this)
        )
        obj = JSObject(proto=proto)
        assert obj.get("prop") is obj

    def test_set_assignment_creates_enumerable_own(self):
        obj = JSObject()
        obj.set("x", 1)
        desc = obj.get_own_property("x")
        assert desc.enumerable and desc.writable and desc.configurable

    def test_set_shadowing_inherited_data(self):
        proto, obj = make_chain()
        obj.set("inherited", "shadow")
        assert obj.get("inherited") == "shadow"
        assert proto.get("inherited") == "from-proto"

    def test_set_readonly_raises(self):
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.data(1, writable=False))
        with pytest.raises(JSTypeError):
            obj.set("x", 2)

    def test_set_getter_only_raises(self):
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.accessor(get=lambda this: 1))
        with pytest.raises(JSTypeError):
            obj.set("x", 2)

    def test_inherited_setter_invoked(self):
        written = {}
        proto = JSObject()
        proto.define_property(
            "x",
            PropertyDescriptor.accessor(
                get=lambda this: written.get("v"),
                set=lambda this, v: written.__setitem__("v", v),
            ),
        )
        obj = JSObject(proto=proto)
        obj.set("x", 9)
        assert written["v"] == 9
        assert not obj.has_own("x")  # setter consumed the assignment


class TestDelete:
    def test_delete_configurable(self):
        obj = JSObject()
        obj.set("x", 1)
        assert obj.delete("x") is True
        assert not obj.has_own("x")

    def test_delete_non_configurable_fails(self):
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.data(1, configurable=False))
        assert obj.delete("x") is False
        assert obj.has_own("x")

    def test_delete_missing_is_true(self):
        assert JSObject().delete("ghost") is True


class TestDefineProperty:
    def test_new_property_defaults_are_falsy(self):
        """The spec default that makes the spoofed webdriver vanish from
        Object.keys (Section 3.1)."""
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor(get=lambda this: False))
        desc = obj.get_own_property("x")
        assert desc.enumerable is False
        assert desc.configurable is False

    def test_redefine_keeps_unspecified_attributes(self):
        obj = JSObject()
        obj.define_property(
            "x", PropertyDescriptor.data(1, enumerable=True, configurable=True)
        )
        obj.define_property("x", PropertyDescriptor(value=2, has_value=True))
        desc = obj.get_own_property("x")
        assert desc.value == 2
        assert desc.enumerable is True

    def test_redefine_non_configurable_rejected(self):
        obj = JSObject()
        obj.define_property("x", PropertyDescriptor.data(1, configurable=False))
        with pytest.raises(JSTypeError):
            obj.define_property(
                "x", PropertyDescriptor.accessor(get=lambda this: 2)
            )

    def test_redefine_non_configurable_enumerability_rejected(self):
        obj = JSObject()
        obj.define_property(
            "x", PropertyDescriptor.data(1, enumerable=True, configurable=False)
        )
        with pytest.raises(JSTypeError):
            obj.define_property("x", PropertyDescriptor(enumerable=False))

    def test_define_getter_is_enumerable_configurable(self):
        """__defineGetter__ always creates enumerable+configurable."""
        obj = JSObject()
        obj.define_getter("x", lambda this: 7)
        desc = obj.get_own_property("x")
        assert desc.enumerable is True
        assert desc.configurable is True
        assert obj.get("x") == 7

    def test_define_setter_keeps_getter(self):
        obj = JSObject()
        obj.define_getter("x", lambda this: 7)
        sink = {}
        obj.define_setter("x", lambda this, v: sink.__setitem__("v", v))
        assert obj.get("x") == 7
        obj.set("x", 3)
        assert sink["v"] == 3

    def test_non_extensible_rejects_new_properties(self):
        obj = JSObject()
        obj.extensible = False
        with pytest.raises(JSTypeError):
            obj.define_property("x", PropertyDescriptor.data(1))


class TestPrototype:
    def test_set_prototype_of(self):
        a, b = JSObject(), JSObject()
        b.set_prototype_of(a)
        assert b.proto is a

    def test_cycle_rejected(self):
        a = JSObject()
        b = JSObject(proto=a)
        with pytest.raises(JSTypeError):
            a.set_prototype_of(b)

    def test_self_cycle_rejected(self):
        a = JSObject()
        with pytest.raises(JSTypeError):
            a.set_prototype_of(a)

    def test_prototype_chain(self):
        a = JSObject()
        b = JSObject(proto=a)
        c = JSObject(proto=b)
        assert c.prototype_chain() == [b, a]

    def test_has_walks_chain(self):
        proto, obj = make_chain()
        assert obj.has("inherited")
        assert obj.has("own")
        assert not obj.has("ghost")


class TestEnumeration:
    def test_object_keys_own_enumerable_in_insertion_order(self):
        obj = JSObject()
        obj.set("b", 1)
        obj.set("a", 2)
        obj.define_property("hidden", PropertyDescriptor.data(3, enumerable=False))
        assert object_keys(obj) == ["b", "a"]

    def test_get_own_property_names_includes_non_enumerable(self):
        obj = JSObject()
        obj.set("a", 1)
        obj.define_property("hidden", PropertyDescriptor.data(2, enumerable=False))
        assert get_own_property_names(obj) == ["a", "hidden"]

    def test_for_in_own_before_proto(self):
        proto, obj = make_chain()
        assert for_in_names(obj) == ["own", "inherited"]

    def test_for_in_skips_shadowed_names(self):
        proto, obj = make_chain()
        obj.set("inherited", "shadow")
        assert for_in_names(obj) == ["own", "inherited"]

    def test_for_in_nonenumerable_own_suppresses_proto(self):
        """The exact mechanism of Section 3.1: a non-enumerable own shadow
        makes the attribute disappear from enumeration entirely."""
        proto, obj = make_chain()
        obj.define_property(
            "inherited", PropertyDescriptor(get=lambda this: None)
        )  # defaults: enumerable False
        assert for_in_names(obj) == ["own"]
