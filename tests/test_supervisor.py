"""The resilient crawl supervisor: retries, recycling, checkpoint/resume."""

import json

import pytest

from repro.crawl import (
    CrawlSupervisor,
    FailureReason,
    OpenWPMCrawler,
    PopulationConfig,
    SiteConfig,
    SupervisorConfig,
    evaluate_crawl_health,
    evaluate_screenshots,
    generate_population,
    visit_coverage,
)
from repro.faults import BackoffPolicy, FaultPlan, FaultType
from repro.spoofing import SpoofingExtension


def small_population(n=60, seed=3):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=1,
            n_captcha_detectors=1,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=1,
            n_http_only_detectors=3,
        )
    )


def make_supervisor(plan=None, config=None, seed=7, instances=4, extension="spoof"):
    crawler = OpenWPMCrawler(
        "supervised",
        extension=SpoofingExtension() if extension == "spoof" else None,
        instances=instances,
        seed=seed,
    )
    return CrawlSupervisor(crawler, config=config, plan=plan)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        population = small_population()
        plan_args = dict(rate=0.08, seed=99)
        a = make_supervisor(FaultPlan.generate(population, 4, **plan_args)).crawl(
            population
        )
        b = make_supervisor(FaultPlan.generate(population, 4, **plan_args)).crawl(
            population
        )
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_different_seed_differs(self):
        population = small_population()
        a = make_supervisor(seed=7).crawl(population)
        b = make_supervisor(seed=8).crawl(population)
        assert json.dumps(a.to_dict()) != json.dumps(b.to_dict())

    def test_backoff_advances_simulated_clock_deterministically(self):
        population = small_population()
        plan = FaultPlan.generate(population, 2, rate=0.2, seed=5)
        sup_a = make_supervisor(plan, instances=2)
        sup_a.crawl(population)
        sup_b = make_supervisor(FaultPlan.generate(population, 2, rate=0.2, seed=5),
                                instances=2)
        sup_b.crawl(population)
        assert sup_a.stats.retries > 0
        assert sup_a.clock.now() == sup_b.clock.now()
        assert sup_a.stats == sup_b.stats


class TestCheckpointResume:
    def test_resume_is_byte_identical(self, tmp_path):
        population = small_population()

        def fresh():
            return make_supervisor(FaultPlan.generate(population, 4, rate=0.08, seed=99))

        full = fresh().crawl(population)
        checkpoint = tmp_path / "crawl.json"
        fresh().crawl(population[:25], checkpoint_path=checkpoint)  # "interrupted"
        resumed_sup = fresh()
        resumed = resumed_sup.crawl(population, checkpoint_path=checkpoint)
        assert resumed_sup.stats.resumed == 25 * 4
        assert json.dumps(full.to_dict()) == json.dumps(resumed.to_dict())

    def test_resume_skips_completed_pairs(self, tmp_path):
        population = small_population(n=20)
        checkpoint = tmp_path / "crawl.json"
        first = make_supervisor()
        first.crawl(population, checkpoint_path=checkpoint)
        resumed_sup = make_supervisor()
        resumed_sup.crawl(population, checkpoint_path=checkpoint)
        assert resumed_sup.stats.resumed == 20 * 4
        # Stats are restored from the checkpoint and nothing is re-visited.
        assert resumed_sup.stats.attempts == first.stats.attempts

    def test_checkpoint_file_is_json_with_records(self, tmp_path):
        population = small_population(n=24)
        checkpoint = tmp_path / "crawl.json"
        make_supervisor().crawl(population, checkpoint_path=checkpoint)
        data = json.loads(checkpoint.read_text())
        assert data["crawler_name"] == "supervised"
        assert len(data["records"]) == 24 * 4
        assert data["clock_ms"] > 0

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        population = small_population(n=24)
        checkpoint = tmp_path / "crawl.json"
        make_supervisor(seed=7).crawl(population, checkpoint_path=checkpoint)
        with pytest.raises(ValueError):
            make_supervisor(seed=8).crawl(population, checkpoint_path=checkpoint)

    def test_interrupt_at_every_site_boundary_is_byte_identical(self, tmp_path):
        """Result AND trace must match the uninterrupted run for every cut."""
        population = small_population(n=12)

        def fresh():
            plan = FaultPlan.generate(population, 2, rate=0.25, seed=5)
            config = SupervisorConfig(checkpoint_every_sites=3)
            return make_supervisor(plan, config=config, instances=2)

        full_trace = tmp_path / "full.jsonl"
        full = fresh().crawl(population, trace_path=full_trace)
        full_json = json.dumps(full.to_dict())
        full_bytes = full_trace.read_bytes()
        for cut in range(1, len(population) + 1):
            checkpoint = tmp_path / f"ck{cut}.json"
            fresh().crawl(population[:cut], checkpoint_path=checkpoint)
            resumed_trace = tmp_path / f"resumed{cut}.jsonl"
            resumed = fresh().crawl(
                population, checkpoint_path=checkpoint, trace_path=resumed_trace
            )
            assert json.dumps(resumed.to_dict()) == full_json, f"cut={cut}"
            assert resumed_trace.read_bytes() == full_bytes, f"cut={cut}"

    def test_resume_advances_the_shared_clock_in_place(self, tmp_path):
        """Regression: _load_checkpoint used to rebind ``self.clock`` to a
        fresh VirtualClock, leaving collaborators that captured the old
        reference (the tracer, notably) on a stale timeline."""
        population = small_population(n=20)
        checkpoint = tmp_path / "crawl.json"
        make_supervisor().crawl(population[:10], checkpoint_path=checkpoint)
        resumed = make_supervisor()
        clock_before = resumed.clock
        tracer_clock_before = resumed.tracer.clock
        resumed.crawl(population, checkpoint_path=checkpoint)
        assert resumed.clock is clock_before
        assert resumed.tracer.clock is resumed.clock
        assert tracer_clock_before is resumed.clock
        # The span timeline actually advanced past the checkpointed time.
        assert resumed.tracer.spans[0].end_ms == resumed.clock.now()

    def test_stale_checkpoint_behind_supervisor_clock_rejected(self, tmp_path):
        population = small_population(n=12)
        checkpoint = tmp_path / "crawl.json"
        make_supervisor().crawl(population, checkpoint_path=checkpoint)
        reused = make_supervisor()
        reused.clock.advance(10_000_000_000.0)  # way past the checkpoint
        with pytest.raises(ValueError):
            reused.crawl(population, checkpoint_path=checkpoint)

    def test_resume_with_shrunk_population_reconciles_stats(self, tmp_path):
        """Regression: restored stats counted checkpointed visits whose
        sites a shrunk population no longer contains, so ``stats`` and
        ``CrawlResult.records`` disagreed."""
        population = small_population(n=12)
        checkpoint = tmp_path / "crawl.json"
        make_supervisor().crawl(population, checkpoint_path=checkpoint)
        shrunk = population[:5] + population[6:]  # one checkpointed site gone
        resumed = make_supervisor()
        result = resumed.crawl(shrunk, checkpoint_path=checkpoint)
        assert len(result.records) == len(shrunk) * 4
        assert resumed.stats.visits == len(result.records)
        assert resumed.stats.reached == len(result.successful_visits)
        assert resumed.stats.failed == len(result.failed_visits)
        assert resumed.stats.resumed == len(shrunk) * 4

    def test_checkpoint_carries_observability_state(self, tmp_path):
        population = small_population(n=24)
        checkpoint = tmp_path / "crawl.json"
        sup = make_supervisor(FaultPlan.generate(population, 4, rate=0.1, seed=2))
        sup.crawl(population, checkpoint_path=checkpoint)
        data = json.loads(checkpoint.read_text())
        assert data["version"] == 2
        assert len(data["trace"]["spans"]) == len(sup.tracer.spans)
        assert data["metrics"] == sup.metrics.state_dict()
        assert len(data["browsers"]) == 4


class TestFailureTaxonomy:
    def test_unreachable_not_retried(self):
        population = [SiteConfig(rank=1, domain="dead.example", unreachable=True)]
        result = make_supervisor(instances=2).crawl(population)
        for record in result.records:
            assert not record.reached
            assert record.failure_reason == FailureReason.UNREACHABLE
            assert record.attempts == 1  # permanent -> no retry

    def test_transient_failures_are_retried_and_recovered(self):
        population = [SiteConfig(rank=1, domain="flaky.example")]
        config = SupervisorConfig(per_visit_failure=0.5, max_attempts=6)
        sup = make_supervisor(config=config, instances=8)
        result = sup.crawl(population)
        recovered = [r for r in result.records if r.recovered]
        assert sup.stats.retries > 0
        assert recovered, "with 50% transient failure some visits must recover"
        for record in recovered:
            assert record.reached
            assert record.attempts > 1
            assert record.failure_reason is None

    def test_exhausted_reason_keeps_last_cause(self):
        population = [SiteConfig(rank=1, domain="down.example")]
        config = SupervisorConfig(per_visit_failure=1.0, max_attempts=3)
        result = make_supervisor(config=config, instances=1).crawl(population)
        (record,) = result.records
        assert not record.reached
        assert record.attempts == 3
        assert record.failure_reason == FailureReason.exhausted(FailureReason.TRANSIENT)

    def test_fault_failure_reasons_carry_taxonomy(self):
        population = small_population(n=30)
        plan = FaultPlan.generate(
            population,
            2,
            rate=1.0,
            seed=4,
            fault_types=[FaultType.DRIVER_CRASH],
            max_attempts_affected=1,
        )
        config = SupervisorConfig(max_attempts=1)  # no retry: every fault is final
        result = make_supervisor(plan, config=config, instances=2).crawl(population)
        crashed = [
            r
            for r in result.records
            if r.failure_reason == FailureReason.exhausted(FaultType.DRIVER_CRASH.value)
        ]
        reachable = sum(1 for s in population if not s.unreachable)
        assert len(crashed) == reachable * 2

    def test_failure_counts_accounting(self):
        population = small_population()
        result = make_supervisor().crawl(population)
        counts = result.failure_counts()
        assert sum(counts.values()) == len(result.failed_visits)
        unreachable_sites = sum(1 for s in population if s.unreachable)
        assert counts[FailureReason.UNREACHABLE] == unreachable_sites * 4


class TestRecoveryMachinery:
    def test_browser_recycled_on_fatal_fault(self):
        population = small_population(n=20)
        plan = FaultPlan.generate(
            population,
            1,
            rate=1.0,
            seed=4,
            fault_types=[FaultType.OOM_RESTART],
            max_attempts_affected=1,
        )
        sup = make_supervisor(plan, instances=1)
        sup.crawl(population)
        reachable = sum(1 for s in population if not s.unreachable)
        assert sup.stats.recycles == reachable  # every OOM kills the browser

    def test_browser_recycled_after_fault_budget(self):
        population = small_population(n=30)
        plan = FaultPlan.generate(
            population,
            1,
            rate=1.0,
            seed=4,
            fault_types=[FaultType.STALE_ELEMENT],
            max_attempts_affected=1,
        )
        config = SupervisorConfig(recycle_after_faults=3)
        sup = make_supervisor(plan, config=config, instances=1)
        sup.crawl(population)
        assert sup.stats.faults_seen >= 3
        assert sup.stats.recycles == sup.stats.faults_seen // 3

    def test_circuit_breaker_short_circuits_dead_domain(self):
        population = [SiteConfig(rank=1, domain="dead.example", unreachable=True)]
        config = SupervisorConfig(breaker_failure_threshold=3)
        sup = make_supervisor(config=config, instances=8)
        result = sup.crawl(population)
        reasons = [r.failure_reason for r in result.records]
        assert reasons[:3] == [FailureReason.UNREACHABLE] * 3
        assert reasons[3:] == [FailureReason.CIRCUIT_OPEN] * 5
        assert sup.stats.breaker_skips == 5

    def test_hang_costs_the_full_step_budget(self):
        population = [SiteConfig(rank=1, domain="hang.example")]
        plan = FaultPlan.generate(
            population,
            1,
            rate=1.0,
            seed=4,
            fault_types=[FaultType.DRIVER_HANG],
            max_attempts_affected=1,
        )
        config = SupervisorConfig(
            visit_budget_ms=60_000.0,
            visit_cost_ms=8_000.0,
            backoff=BackoffPolicy(jitter=0.0),
        )
        sup = make_supervisor(plan, config=config, instances=1)
        sup.crawl(population)
        # budget (hang) + backoff(attempt 0) + clean retry cost.
        expected = 60_000.0 + config.backoff.delay_ms(0) + 8_000.0
        assert sup.clock.now() == pytest.approx(expected)


class TestCoverageAndHealth:
    def test_coverage_under_five_percent_faults(self):
        population = small_population(n=120)
        plan = FaultPlan.generate(population, 8, rate=0.05, seed=99)
        sup = make_supervisor(plan, instances=8)
        result = sup.crawl(population)
        assert len(plan) > 0
        assert visit_coverage(result, population, 8) >= 0.99
        # Every failed record explains itself.
        for record in result.failed_visits:
            assert record.failure_reason is not None

    def test_health_report_totals(self):
        population = small_population()
        plan = FaultPlan.generate(population, 4, rate=0.1, seed=12)
        sup = make_supervisor(plan)
        result = sup.crawl(population)
        health = evaluate_crawl_health(result)
        assert health.total_visits == len(population) * 4
        assert health.reached_visits + health.failed_visits == health.total_visits
        assert health.recovered_visits == sup.stats.recovered
        assert health.attempts_total >= health.total_visits
        assert sum(health.failure_counts.values()) == health.failed_visits
        labels = [label for label, _ in health.rows()]
        assert "recovered by retry" in labels

    def test_screenshot_eval_reports_failed_visits(self):
        population = small_population()
        result = make_supervisor().crawl(population)
        evaluation = evaluate_screenshots(result)
        assert evaluation.failed_visits == len(result.failed_visits)
        assert evaluation.total_visits + evaluation.failed_visits == len(result.records)

    def test_faulty_crawl_statistics_match_fault_free(self):
        """A recovered crawl must not bias the Table 2 categories."""
        population = small_population(n=120)
        clean = make_supervisor(instances=8).crawl(population)
        plan = FaultPlan.generate(population, 8, rate=0.05, seed=99)
        faulty = make_supervisor(plan, instances=8).crawl(population)
        clean_eval = evaluate_screenshots(clean)
        faulty_eval = evaluate_screenshots(faulty)
        assert faulty_eval.blocking_captchas.sites == clean_eval.blocking_captchas.sites
        assert faulty_eval.missing_ads.sites == clean_eval.missing_ads.sites
        assert (
            abs(faulty_eval.total_visits - clean_eval.total_visits)
            <= 0.01 * clean_eval.total_visits
        )
