"""Virtual clock semantics."""

import pytest

from repro.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(12.5)
        clock.advance(0.5)
        assert clock.now() == 13.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(7.0) == 7.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.001)

    def test_sleep_is_seconds(self):
        clock = VirtualClock()
        clock.sleep(0.25)
        assert clock.now() == 250.0

    def test_event_timestamp_quantised_to_1ms(self):
        """Appendix D: keyboard event granularity is 1 ms."""
        clock = VirtualClock()
        clock.advance(12.7)
        assert clock.event_timestamp() == 12.0
        clock.advance(0.4)  # 13.1
        assert clock.event_timestamp() == 13.0

    def test_event_timestamp_monotone(self):
        clock = VirtualClock()
        previous = clock.event_timestamp()
        for _ in range(100):
            clock.advance(0.3)
            current = clock.event_timestamp()
            assert current >= previous
            previous = current
