"""Property-based tests on the interaction models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Box, Point
from repro.humans import HumanScrolling, HumanTyping
from repro.humans.profile import HumanProfile
from repro.models.clicks import hlisa_click_point, uniform_click_point
from repro.models.scroll_cadence import ScrollCadence
from repro.models.typing_rhythm import TypingRhythm

seeds = st.integers(0, 2**31 - 1)
distances = st.floats(min_value=-20000, max_value=20000, allow_nan=False)
texts = st.text(
    alphabet=st.sampled_from("abcdefgXYZ ,.!?123"), min_size=0, max_size=40
)
boxes = st.builds(
    Box,
    st.floats(min_value=0, max_value=2000, allow_nan=False),
    st.floats(min_value=0, max_value=2000, allow_nan=False),
    st.floats(min_value=1, max_value=800, allow_nan=False),
    st.floats(min_value=1, max_value=800, allow_nan=False),
)


class TestScrollPlans:
    @settings(max_examples=50, deadline=None)
    @given(distances, seeds)
    def test_hlisa_plan_covers_distance(self, distance, seed):
        plan = ScrollCadence(np.random.default_rng(seed)).plan(distance)
        covered = sum(delta for _, delta in plan)
        if distance == 0:
            assert plan == []
        else:
            assert abs(covered) >= abs(distance)
            assert abs(covered) - abs(distance) < 57.0 + 1e-9
            assert all(np.sign(delta) == np.sign(distance) for _, delta in plan)

    @settings(max_examples=50, deadline=None)
    @given(distances, seeds)
    def test_human_plan_covers_distance(self, distance, seed):
        profile = HumanProfile(seed=seed)
        plan = HumanScrolling(profile).plan(distance)
        covered = sum(delta for _, delta in plan)
        if distance == 0:
            assert plan == []
        else:
            assert abs(covered) >= abs(distance)

    @settings(max_examples=50, deadline=None)
    @given(distances, seeds)
    def test_pauses_non_negative(self, distance, seed):
        plan = ScrollCadence(np.random.default_rng(seed)).plan(distance)
        assert all(pause >= 0 for pause, _ in plan)


class TestTypingPlans:
    @settings(max_examples=60, deadline=None)
    @given(texts, seeds)
    def test_hlisa_plan_balanced(self, text, seed):
        plan = TypingRhythm(np.random.default_rng(seed)).plan(text)
        balance = {}
        for dt, kind, key in plan:
            assert dt >= 0
            balance[key] = balance.get(key, 0) + (1 if kind == "down" else -1)
            assert 0 <= balance[key] <= 1
        assert all(v == 0 for v in balance.values())

    @settings(max_examples=60, deadline=None)
    @given(texts, seeds)
    def test_hlisa_plan_types_text_in_order(self, text, seed):
        plan = TypingRhythm(np.random.default_rng(seed)).plan(text)
        downs = [key for _, kind, key in plan if kind == "down" and key != "Shift"]
        assert downs == list(text)

    @settings(max_examples=60, deadline=None)
    @given(texts, seeds)
    def test_human_plan_balanced(self, text, seed):
        plan = HumanTyping(HumanProfile(seed=seed)).plan(text)
        balance = {}
        for dt, kind, key in plan:
            assert dt >= 0
            balance[key] = balance.get(key, 0) + (1 if kind == "down" else -1)
        assert all(v == 0 for v in balance.values())

    @settings(max_examples=60, deadline=None)
    @given(texts, seeds)
    def test_human_plan_replay_yields_text(self, text, seed):
        """Replaying the key plan against a buffer reproduces the text
        (rollover included -- order of *presses* is what matters)."""
        plan = HumanTyping(HumanProfile(seed=seed)).plan(text)
        typed = "".join(
            key for _, kind, key in plan if kind == "down" and key != "Shift"
        )
        assert typed == text


class TestClickPoints:
    @settings(max_examples=60, deadline=None)
    @given(boxes, seeds)
    def test_hlisa_point_inside_box(self, box, seed):
        rng = np.random.default_rng(seed)
        for _ in range(5):
            assert box.contains(hlisa_click_point(box, rng))

    @settings(max_examples=60, deadline=None)
    @given(boxes, seeds)
    def test_uniform_point_inside_box(self, box, seed):
        rng = np.random.default_rng(seed)
        for _ in range(5):
            assert box.contains(uniform_click_point(box, rng))

    @settings(max_examples=40, deadline=None)
    @given(boxes, seeds)
    def test_human_click_inside_box(self, box, seed):
        from repro.humans import HumanClicking

        clicking = HumanClicking(HumanProfile(seed=seed))
        for factor in (0.6, 1.0, 2.0):
            point = clicking.click_point(box, speed_factor=factor)
            assert box.contains(point)
