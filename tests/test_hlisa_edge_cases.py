"""HLISA boundary conditions and robustness."""

import pytest

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.dom.element import Element
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver.driver import make_browser_driver
from repro.webdriver.webelement import WebElement


@pytest.fixture
def rig():
    driver = make_browser_driver(page_height=5000)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder


class TestBoundaries:
    def test_move_target_clamped_to_viewport(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=1)
        chain.move_to(99999, 99999)
        chain.perform()  # must not raise MoveTargetOutOfBounds
        p = driver.pipeline.pointer
        assert p.x <= driver.window.viewport_width
        assert p.y <= driver.window.viewport_height

    def test_curve_never_leaves_viewport(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=2)
        # Target hugging the viewport edge: the bowed curve would swing
        # outside if not clamped.
        chain.move_to(driver.window.viewport_width - 2, 5)
        chain.perform()
        for _, x, y in recorder.mouse_path():
            assert 0 <= x <= driver.window.viewport_width
            assert 0 <= y <= driver.window.viewport_height

    def test_tiny_move_is_noop(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=3)
        chain.move_to(200, 200)
        chain.perform()
        n_before = len(recorder.mouse_path())
        chain.move_to(200.3, 200.2)  # sub-pixel
        chain.perform()
        assert len(recorder.mouse_path()) == n_before

    def test_element_without_box_raises(self, rig):
        driver, _ = rig
        bare = Element("div")  # no layout
        driver.window.document.body.append_child(bare)
        chain = HLISA_ActionChains(driver, seed=4)
        chain.move_to_element(WebElement(driver, bare))
        with pytest.raises(ValueError):
            chain.perform()

    def test_scroll_to_clamped(self, rig):
        driver, _ = rig
        chain = HLISA_ActionChains(driver, seed=5)
        chain.scroll_to(0, 10_000_000)
        chain.perform()
        assert driver.window.scroll_y == driver.window.max_scroll_y

    def test_scroll_by_zero_is_noop(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=6)
        chain.scroll_by(0, 0)
        chain.perform()
        assert recorder.scroll_events() == []

    def test_negative_scroll_direction(self, rig):
        driver, _ = rig
        driver.pipeline.scroll_programmatic(0, 2000)
        chain = HLISA_ActionChains(driver, seed=7)
        chain.scroll_by(0, -500)
        chain.perform()
        assert driver.window.scroll_y == pytest.approx(1500, abs=60)

    def test_empty_send_keys(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=8)
        chain.send_keys("")
        chain.perform()
        assert recorder.key_strokes() == []

    def test_empty_perform_is_noop(self, rig):
        driver, recorder = rig
        HLISA_ActionChains(driver, seed=9).perform()
        assert recorder.events == []


class TestChaining:
    def test_fluent_chaining_returns_self(self, rig):
        driver, _ = rig
        chain = HLISA_ActionChains(driver, seed=10)
        result = chain.move_to(100, 100).pause(0.01).click()
        assert result is chain

    def test_queue_survives_until_perform(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=11)
        chain.move_to(400, 300)
        assert recorder.mouse_path() == []  # nothing executed yet
        chain.perform()
        assert recorder.mouse_path() != []

    def test_multiple_performs_accumulate_state(self, rig):
        driver, _ = rig
        chain = HLISA_ActionChains(driver, seed=12)
        chain.move_to(200, 200)
        chain.perform()
        first = driver.pipeline.pointer
        chain.move_by_offset(100, 0)
        chain.perform()
        assert driver.pipeline.pointer.x == pytest.approx(first.x + 100, abs=1.5)

    def test_custom_params_honoured(self, rig):
        from repro.models.clicks import ClickParams

        driver, recorder = rig
        chain = HLISA_ActionChains(
            driver,
            seed=13,
            click_params=ClickParams(dwell_mean_ms=200.0, dwell_sd_ms=1.0),
        )
        chain.click(driver.find_element_by_id("submit"))
        chain.perform()
        assert recorder.clicks()[0].dwell_ms == pytest.approx(200.0, abs=15)
