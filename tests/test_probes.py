"""The probe ledger: recording, instrumentation, attribution, diffing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.browser.navigator import NavigatorProfile, make_navigator
from repro.browser.window import Window
from repro.clock import VirtualClock
from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    PopulationConfig,
    generate_population,
)
from repro.detection.fingerprint import (
    PROBE_WEBDRIVER_FLAG,
    SideEffect,
    run_all_probes,
)
from repro.jsobject import (
    JSObject,
    JSProxy,
    JSTypeError,
    NativeFunction,
    PropertyDescriptor,
)
from repro.obs.attribute import (
    VANILLA_GROUP,
    build_attribution,
    record_table1_ledger,
)
from repro.obs.cli import main as obs_main
from repro.obs.diff import ExportKindError, diff_exports
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import (
    PROBE_SCOPE_PREFIX,
    SPOOF_SCOPE_PREFIX,
    LedgerEntry,
    ProbeLedger,
    instrument,
    instrument_window,
    ledger_to_jsonl,
    parse_ledger,
    read_ledger,
    write_ledger,
)
from repro.spoofing import SpoofingExtension
from repro.spoofing.methods import SpoofingMethod, apply_spoofing


def automated_window() -> Window:
    return Window(profile=NavigatorProfile(webdriver=True))


def ops(ledger: ProbeLedger):
    return [entry.op for entry in ledger.entries]


# -- the ledger itself -----------------------------------------------------


class TestProbeLedger:
    def test_sequential_ids_and_virtual_clock(self):
        clock = VirtualClock()
        ledger = ProbeLedger(clock=clock)
        ledger.record("get", "navigator", key="webdriver")
        clock.advance(25.0)
        ledger.record("ownKeys", "navigator")
        assert [e.entry_id for e in ledger.entries] == [1, 2]
        assert [e.ts_ms for e in ledger.entries] == [0.0, 25.0]

    def test_scopes_nest_and_pop(self):
        ledger = ProbeLedger()
        ledger.record("get", "navigator")
        with ledger.scope("outer"):
            ledger.record("get", "navigator")
            with ledger.scope("inner"):
                ledger.record("get", "navigator")
            ledger.record("get", "navigator")
        ledger.record("get", "navigator")
        assert [e.scope for e in ledger.entries] == [
            "",
            "outer",
            "outer/inner",
            "outer",
            "",
        ]

    def test_scope_pops_on_exception(self):
        ledger = ProbeLedger()
        with pytest.raises(RuntimeError):
            with ledger.scope("doomed"):
                raise RuntimeError("boom")
        ledger.record("get", "navigator")
        assert ledger.entries[-1].scope == ""

    def test_metrics_folding(self):
        metrics = MetricsRegistry()
        ledger = ProbeLedger(metrics=metrics)
        with ledger.scope(PROBE_SCOPE_PREFIX + "NEW_OBJECT_KEYS"):
            ledger.record("ownKeys", "navigator")
            ledger.record("get", "navigator", key="webdriver")
        with ledger.scope("not-a-probe"):
            ledger.record("get", "navigator")
        assert metrics.counter_value("probe.ops.ownKeys") == 1
        assert metrics.counter_value("probe.ops.get") == 2
        histogram = metrics.histogram("probe_accesses_per_probe")
        assert histogram.count == 1  # only the detector.probe scope
        assert histogram.total == 2.0

    def test_state_roundtrip(self):
        ledger = ProbeLedger()
        with ledger.scope("a"):
            ledger.record("get", "navigator", key="x", detail={"n": 1})
        other = ProbeLedger()
        other.load_state(ledger.state_dict())
        assert other.entries == ledger.entries
        other.record("set", "navigator")
        assert other.entries[-1].entry_id == 2

    def test_jsonl_roundtrip_is_canonical(self):
        ledger = ProbeLedger()
        ledger.record("ownKeys", "navigator", detail={"keys": ["b", "a"]})
        text = ledger_to_jsonl(ledger.entries)
        line = text.splitlines()[0]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert parse_ledger(text) == ledger.entries

    def test_write_and_read_ledger(self, tmp_path):
        ledger = ProbeLedger()
        ledger.record("get", "navigator", key="webdriver")
        path = write_ledger(tmp_path / "ledger.jsonl", ledger)
        assert read_ledger(path) == ledger.entries

    def test_op_counts_sorted(self):
        ledger = ProbeLedger()
        ledger.record("set", "navigator")
        ledger.record("get", "navigator")
        ledger.record("get", "navigator")
        assert ledger.op_counts() == {"get": 2, "set": 1}
        assert list(ledger.op_counts()) == ["get", "set"]


# -- jsobject hook points --------------------------------------------------


class TestJSObjectHooks:
    def instrumented(self):
        ledger = ProbeLedger()
        obj = JSObject()
        obj.define_property(
            "answer", PropertyDescriptor.data(42, enumerable=True)
        )
        instrument(obj, ledger, "thing")
        return obj, ledger

    def test_uninstrumented_objects_record_nothing(self):
        obj = JSObject()
        obj.define_property("a", PropertyDescriptor.data(1, enumerable=True))
        obj.get("a"), obj.has("a"), obj.own_property_names()
        assert JSObject._probe_ledger is None

    def test_get_set_has_delete(self):
        obj, ledger = self.instrumented()
        obj.get("answer")
        obj.set("answer", 43)
        obj.has("answer")
        obj.has_own("missing")
        obj.delete("answer")
        recorded = [(e.op, e.key) for e in ledger.entries]
        assert recorded == [
            ("get", "answer"),
            ("set", "answer"),
            ("has", "answer"),
            ("hasOwn", "missing"),
            ("delete", "answer"),
        ]
        assert ledger.entries[2].detail == {"result": True}
        assert ledger.entries[3].detail == {"result": False}
        assert ledger.entries[4].detail == {"result": True}

    def test_define_property_and_enumeration(self):
        obj, ledger = self.instrumented()
        obj.define_property(
            "extra", PropertyDescriptor.data(1, enumerable=True)
        )
        names = obj.own_property_names()
        enumerable = obj.own_enumerable_names()
        entries = ledger.entries
        assert entries[0].op == "defineProperty"
        assert entries[0].detail["kind"] == "data"
        assert entries[1].op == "ownKeys"
        assert entries[1].detail == {"keys": names}
        assert entries[2].op == "enumerate"
        assert entries[2].detail == {"keys": enumerable}

    def test_prototype_operations(self):
        ledger = ProbeLedger()
        proto = JSObject()
        obj = JSObject(proto=proto)
        instrument(obj, ledger, "thing")
        assert obj.proto is proto
        obj.set_prototype_of(JSObject())
        assert ops(ledger) == ["getPrototypeOf", "setPrototypeOf"]

    def test_getter_invocation_recorded_on_holder(self):
        ledger = ProbeLedger()
        proto = JSObject()
        proto.define_property(
            "computed",
            PropertyDescriptor.accessor(get=lambda this: 7, enumerable=True),
        )
        obj = JSObject(proto=proto)
        instrument(obj, ledger, "thing")
        assert obj.get("computed") == 7
        recorded = [(e.op, e.obj) for e in ledger.entries]
        assert recorded == [
            ("get", "thing"),
            ("getter", "thing.__proto__"),
        ]
        assert ledger.entries[1].detail == {"native": False}


class TestFunctionHooks:
    def test_native_tostring_recorded(self):
        ledger = ProbeLedger()
        fn = NativeFunction(lambda this: None, name="sendBeacon")
        fn._probe_ledger = ledger
        fn._probe_label = "navigator.sendBeacon"
        fn.to_string()
        entry = ledger.entries[0]
        assert entry.op == "toString"
        assert entry.detail == {"name": "sendBeacon", "native": True}

    def test_brand_check_throw_recorded(self):
        ledger = ProbeLedger()
        navigator = make_navigator(NavigatorProfile(webdriver=True))
        instrument(navigator, ledger, "navigator")
        proto = navigator.proto
        with pytest.raises(JSTypeError):
            proto.get("webdriver", receiver=proto)
        brand_checks = [e for e in ledger.entries if e.op == "brandCheck"]
        assert len(brand_checks) == 1
        assert brand_checks[0].detail["result"] == "throw"
        assert brand_checks[0].key == "webdriver"

    def test_bound_anonymous_wrapper_inherits_ledger(self):
        ledger = ProbeLedger()
        navigator = make_navigator(NavigatorProfile(webdriver=True))
        instrument(navigator, ledger, "navigator")
        to_string = navigator.get("toString")
        wrapper = to_string.bound_anonymous(navigator)
        start = len(ledger)
        wrapper.to_string()
        entry = ledger.slice_from(start)[-1]
        assert entry.op == "toString"
        assert entry.detail == {"name": "", "native": True}


# -- proxy trap vs forward -------------------------------------------------


class TestProxyForwarding:
    def handlerless_pair(self):
        """Two identical targets: one behind an instrumented handler-less
        proxy, one bare and uninstrumented."""

        def build():
            target = JSObject()
            target.define_property(
                "a", PropertyDescriptor.data(1, enumerable=True)
            )
            target.define_property(
                "b", PropertyDescriptor.data(2, enumerable=True)
            )
            return target

        ledger = ProbeLedger()
        proxy = JSProxy(build(), handler={})
        instrument(proxy, ledger, "navigator")
        return proxy, build(), ledger

    def test_forward_entries_and_state_parity(self):
        proxy, bare, ledger = self.handlerless_pair()
        for obj in (proxy, bare):
            obj.set("a", 10)
            obj.set("c", 3)
            assert obj.has("a") is True
            assert obj.delete("b") is True
            assert obj.has("b") is False
        # the instrumented proxy forwarded every operation...
        forwarded = [
            (e.op, e.key) for e in ledger.entries if e.via == "forward"
        ]
        assert ("set", "a") in forwarded
        assert ("set", "c") in forwarded
        assert ("has", "a") in forwarded
        assert ("deleteProperty", "b") in forwarded
        assert ("has", "b") in forwarded
        # ...and left the target exactly where the uninstrumented bare
        # object ended up.
        assert proxy.target.own_property_names() == bare.own_property_names()
        for name in bare.own_property_names():
            assert proxy.target.get(name) == bare.get(name)

    def test_trap_vs_forward_distinction(self):
        ledger = ProbeLedger()
        target = JSObject()
        target.define_property(
            "x", PropertyDescriptor.data(1, enumerable=True)
        )
        proxy = JSProxy(target, handler={"get": lambda t, k, r: 99})
        instrument(proxy, ledger, "navigator")
        assert proxy.get("x") == 99
        assert proxy.has("x") is True
        vias = [(e.op, e.via) for e in ledger.entries if e.obj == "navigator"]
        assert ("get", "trap") in vias
        assert ("has", "forward") in vias

    def test_own_keys_and_descriptor_record(self):
        proxy, _, ledger = self.handlerless_pair()
        proxy.own_property_names()
        proxy.get_own_property("a")
        recorded = [(e.op, e.via) for e in ledger.entries]
        assert ("ownKeys", "forward") in recorded
        assert ("getOwnPropertyDescriptor", "forward") in recorded


# -- instrumentation -------------------------------------------------------


class TestInstrument:
    def test_attachment_records_nothing_and_is_idempotent(self):
        ledger = ProbeLedger()
        navigator = make_navigator(NavigatorProfile(webdriver=True))
        instrument(navigator, ledger, "navigator")
        instrument(navigator, ledger, "navigator")
        assert len(ledger) == 0
        assert navigator._probe_ledger is ledger
        assert navigator.proto._probe_label == "navigator.__proto__"
        assert len(ledger) == 1  # .proto above is an observable read

    def test_make_navigator_accepts_ledger(self):
        ledger = ProbeLedger()
        navigator = make_navigator(
            NavigatorProfile(webdriver=True), ledger=ledger
        )
        assert navigator._probe_ledger is ledger
        assert len(ledger) == 0

    def test_instrument_window_attaches_to_window(self):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        assert window.probe_ledger is ledger
        assert window.navigator._probe_ledger is ledger


# -- spoofing scopes -------------------------------------------------------


class TestSpoofScopes:
    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_install_scope_labels(self, method):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        apply_spoofing(window, method)
        scope = SPOOF_SCOPE_PREFIX + method.name.lower()
        install_entries = [e for e in ledger.entries if e.scope == scope]
        # methods 1-3 manipulate the instrumented graph during install;
        # method 4 only wraps it in a fresh proxy (nothing to record).
        if method is SpoofingMethod.PROXY:
            assert install_entries == []
        else:
            assert install_entries
            assert all(e.scope.startswith(scope) for e in install_entries)

    def test_proxy_reinstrumented_after_install(self):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        apply_spoofing(window, SpoofingMethod.PROXY)
        assert isinstance(window.navigator, JSProxy)
        assert window.navigator._probe_ledger is ledger

    def test_extension_inject_scope(self):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        SpoofingExtension(SpoofingMethod.DEFINE_PROPERTY).inject(window)
        scopes = {e.scope for e in ledger.entries}
        assert (
            "extension.inject:define_property/"
            + SPOOF_SCOPE_PREFIX
            + "define_property"
        ) in scopes

    def test_uninstrumented_spoofing_unchanged(self):
        window = automated_window()
        apply_spoofing(window, SpoofingMethod.PROXY)
        result = run_all_probes(window)
        assert result.side_effects == {SideEffect.UNNAMED_FUNCTIONS}


# -- detection wiring ------------------------------------------------------

#: Table 1 ground truth (side effects per method, from the paper).
TABLE1 = {
    SpoofingMethod.DEFINE_PROPERTY: {
        SideEffect.INCORRECT_PROPERTY_ORDER,
        SideEffect.MODIFIED_LENGTH,
        SideEffect.NEW_OBJECT_KEYS,
    },
    SpoofingMethod.DEFINE_GETTER: {
        SideEffect.INCORRECT_PROPERTY_ORDER,
        SideEffect.MODIFIED_LENGTH,
        SideEffect.NEW_OBJECT_KEYS,
    },
    SpoofingMethod.SET_PROTOTYPE_OF: {SideEffect.PROTO_WEBDRIVER_DEFINED},
    SpoofingMethod.PROXY: {SideEffect.UNNAMED_FUNCTIONS},
}


class TestDetectionWiring:
    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_instrumented_probes_match_uninstrumented(self, method):
        plain = automated_window()
        apply_spoofing(plain, method)
        expected = run_all_probes(plain).side_effects

        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        apply_spoofing(window, method)
        result = run_all_probes(window)
        assert result.side_effects == expected == TABLE1[method]

    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_each_side_effect_carries_its_ledger_slice(self, method):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        apply_spoofing(window, method)
        result = run_all_probes(window)
        assert set(result.ledger_slices) == result.side_effects
        for effect, slice_entries in result.ledger_slices.items():
            assert slice_entries, f"empty slice for {effect}"
            scope = PROBE_SCOPE_PREFIX + effect.name
            assert all(scope in e.scope for e in slice_entries)
            # the slice ends with the probe's own verdict
            assert slice_entries[-1].op == "probe.result"
            assert slice_entries[-1].detail == {"fired": True}

    def test_probe_slices_cover_every_probe(self):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        result = run_all_probes(window)
        assert PROBE_WEBDRIVER_FLAG in result.probe_slices
        for effect in SideEffect:
            assert effect.name in result.probe_slices

    def test_vanilla_instrumented_window_fires_nothing(self):
        ledger = ProbeLedger()
        window = automated_window()
        instrument_window(window, ledger)
        result = run_all_probes(window)
        assert result.side_effects == set()
        assert result.ledger_slices == {}


# -- attribution -----------------------------------------------------------


class TestAttribution:
    @pytest.fixture(scope="class")
    def report(self):
        ledger = record_table1_ledger()
        # the acceptance bar: attribution works from the serialised
        # ledger alone, with no in-memory objects.
        entries = parse_ledger(ledger_to_jsonl(ledger.entries))
        return build_attribution(entries)

    def test_reconstructs_table1_exactly(self, report):
        assert report.baseline == VANILLA_GROUP
        for method, expected in TABLE1.items():
            label = f"method:{method.value}:{method.name.lower()}"
            group = report.group(label)
            assert group is not None, label
            assert set(group.side_effects) == {e.name for e in expected}

    def test_vanilla_group_reports_only_webdriver_flag(self, report):
        group = report.group(VANILLA_GROUP)
        assert group.side_effects == [PROBE_WEBDRIVER_FLAG]

    def test_every_side_effect_has_concrete_culprits(self, report):
        for method, expected in TABLE1.items():
            label = f"method:{method.value}:{method.name.lower()}"
            group = report.group(label)
            for probe in group.probes:
                if not probe.fired:
                    continue
                assert probe.culprits, f"{label}/{probe.probe} has no culprits"
                anchored = [
                    c for c in probe.culprits if c.entry_ids
                ]
                assert anchored, f"{label}/{probe.probe} culprits lack entries"
                for culprit in anchored:
                    assert culprit.op
                    # the property key is on the culprit or in its payload
                    assert (
                        culprit.key is not None
                        or culprit.detail_observed
                        or culprit.kind == "added"
                    )

    def test_known_culprits(self, report):
        keys_probe = next(
            p
            for p in report.group("method:1:define_property").probes
            if p.probe == SideEffect.NEW_OBJECT_KEYS.name
        )
        enumerate_culprit = next(
            c for c in keys_probe.culprits if c.op == "enumerate"
        )
        assert enumerate_culprit.detail_observed == {"keys": ["webdriver"]}

        unnamed_probe = next(
            p
            for p in report.group("method:4:proxy").probes
            if p.probe == SideEffect.UNNAMED_FUNCTIONS.name
        )
        tostring_culprit = next(
            c
            for c in unnamed_probe.culprits
            if c.op == "toString" and c.kind == "changed"
        )
        assert tostring_culprit.detail_observed["name"] == ""

    def test_external_baseline_used_without_vanilla_group(self):
        spoofed = ProbeLedger()
        window = automated_window()
        instrument_window(window, spoofed)
        apply_spoofing(window, SpoofingMethod.DEFINE_PROPERTY)
        run_all_probes(window)

        vanilla = ProbeLedger()
        window = automated_window()
        instrument_window(window, vanilla)
        run_all_probes(window)

        report = build_attribution(spoofed.entries, vanilla.entries)
        assert report.baseline == "(external baseline)"
        group = report.group("crawl")
        fired = {p.probe for p in group.probes if p.fired}
        assert fired == {e.name for e in TABLE1[SpoofingMethod.DEFINE_PROPERTY]}
        for probe in group.probes:
            if probe.fired:
                assert probe.culprits

    def test_no_baseline_still_reports_fired(self):
        spoofed = ProbeLedger()
        window = automated_window()
        instrument_window(window, spoofed)
        apply_spoofing(window, SpoofingMethod.PROXY)
        run_all_probes(window)
        report = build_attribution(spoofed.entries)
        assert report.baseline is None
        group = report.group("crawl")
        assert SideEffect.UNNAMED_FUNCTIONS.name in group.side_effects
        assert all(not p.culprits for p in group.probes)

    def test_renderings(self, report):
        text = report.render_text()
        assert "method:4:proxy" in text
        assert "UNNAMED_FUNCTIONS" in text
        data = json.loads(report.render_json())
        assert len(data["groups"]) == 5

    def test_ledger_is_deterministic(self):
        a = ledger_to_jsonl(record_table1_ledger().entries)
        b = ledger_to_jsonl(record_table1_ledger().entries)
        assert a == b


# -- diffing ---------------------------------------------------------------


class TestDiff:
    def sample_ledger(self):
        ledger = ProbeLedger()
        with ledger.scope("a"):
            ledger.record("get", "navigator", key="webdriver")
            ledger.record("ownKeys", "navigator", detail={"keys": []})
        return ledger

    def test_identical(self, tmp_path):
        ledger = self.sample_ledger()
        a = write_ledger(tmp_path / "a.jsonl", ledger)
        b = write_ledger(tmp_path / "b.jsonl", ledger)
        result = diff_exports(a, b)
        assert result.identical
        assert result.kind == "ledger"
        assert "identical: yes" in result.render_text()

    def test_added_removed_changed(self, tmp_path):
        base = self.sample_ledger()
        a = write_ledger(tmp_path / "a.jsonl", base)
        modified = [LedgerEntry.from_dict(e.to_dict()) for e in base.entries]
        modified[1].key = "changed-key"
        extra = LedgerEntry(3, 0.0, "a", "navigator", "has")
        b = write_ledger(tmp_path / "b.jsonl", modified + [extra])
        result = diff_exports(a, b)
        assert not result.identical
        assert result.added == [3]
        assert result.removed == []
        assert len(result.changed) == 1
        change = result.changed[0]
        assert change.record_id == 2
        assert [c.field for c in change.changes] == ["key"]
        text = result.render_text()
        assert "+ entry_id=3" in text and "entry_id=2 key" in text

    def test_kind_mismatch_raises(self, tmp_path):
        ledger_path = write_ledger(tmp_path / "a.jsonl", self.sample_ledger())
        trace_path = tmp_path / "t.jsonl"
        trace_path.write_text(
            '{"span_id":1,"parent_id":0,"name":"crawl","start_ms":0.0,'
            '"end_ms":1.0,"status":"ok","attrs":{},"events":[]}\n'
        )
        with pytest.raises(ExportKindError):
            diff_exports(ledger_path, trace_path)

    def test_traces_diff_too(self, tmp_path):
        trace_line = (
            '{"span_id":1,"parent_id":0,"name":"crawl","start_ms":0.0,'
            '"end_ms":1.0,"status":"ok","attrs":{},"events":[]}\n'
        )
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(trace_line)
        b.write_text(trace_line.replace('"ok"', '"failed:transient"'))
        result = diff_exports(a, b)
        assert result.kind == "trace"
        assert [c.changes[0].field for c in result.changed] == ["status"]

    def test_empty_files_diff_clean(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text("")
        b.write_text("")
        assert diff_exports(a, b).identical


# -- CLI -------------------------------------------------------------------


class TestCli:
    def test_diff_exit_codes(self, tmp_path, capsys):
        ledger = ProbeLedger()
        ledger.record("get", "navigator")
        a = write_ledger(tmp_path / "a.jsonl", ledger)
        b = write_ledger(tmp_path / "b.jsonl", ledger)
        assert obs_main(["diff", str(a), str(b)]) == 0
        assert "identical: yes" in capsys.readouterr().out
        ledger.record("set", "navigator")
        write_ledger(b, ledger)
        assert obs_main(["diff", str(a), str(b)]) == 1
        assert obs_main(["diff", str(a), str(tmp_path / "missing.jsonl")]) == 2

    def test_diff_json_output(self, tmp_path, capsys):
        ledger = ProbeLedger()
        ledger.record("get", "navigator")
        a = write_ledger(tmp_path / "a.jsonl", ledger)
        assert obs_main(["diff", str(a), str(a), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["identical"] is True

    def test_attribute_text_and_json(self, tmp_path, capsys):
        path = write_ledger(
            tmp_path / "table1.jsonl", record_table1_ledger()
        )
        assert obs_main(["attribute", str(path)]) == 0
        out = capsys.readouterr().out
        assert "method:4:proxy" in out and "UNNAMED_FUNCTIONS" in out
        out_path = tmp_path / "attribution.json"
        assert (
            obs_main(
                [
                    "attribute",
                    str(path),
                    "--format",
                    "json",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        data = json.loads(out_path.read_text())
        assert data["baseline"] == VANILLA_GROUP

    def test_attribute_missing_file(self, tmp_path, capsys):
        assert obs_main(["attribute", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such ledger" in capsys.readouterr().err


# -- supervised crawls -----------------------------------------------------


def ledger_population(n=24):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=3,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=1,
            n_captcha_detectors=1,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=1,
            n_http_only_detectors=2,
        )
    )


def ledger_supervisor(name="ledgered", extension=True, ledger=None):
    crawler = OpenWPMCrawler(
        name,
        extension=SpoofingExtension() if extension else None,
        instances=2,
        seed=7,
    )
    return CrawlSupervisor(crawler, probe_ledger=ledger)


class TestSupervisedLedger:
    def test_off_by_default(self):
        sup = ledger_supervisor()
        sup.crawl(ledger_population())
        assert sup.ledger is None

    def test_ledger_path_requires_ledger(self, tmp_path):
        sup = ledger_supervisor()
        with pytest.raises(ValueError, match="no probe ledger"):
            sup.crawl(
                ledger_population(), ledger_path=tmp_path / "ledger.jsonl"
            )

    def test_same_seed_ledgers_byte_identical(self, tmp_path):
        population = ledger_population()
        paths = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            ledger_supervisor(name, ledger=ProbeLedger()).crawl(
                population, ledger_path=path
            )
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].read_bytes()  # the crawl actually recorded

    def test_resume_ledger_byte_identical(self, tmp_path):
        population = ledger_population()
        full_path = tmp_path / "full.jsonl"
        ledger_supervisor("crawl", ledger=ProbeLedger()).crawl(
            population, ledger_path=full_path
        )

        ckpt = tmp_path / "ckpt.json"
        first = ledger_supervisor("crawl", ledger=ProbeLedger())
        first.config.checkpoint_every_sites = 1
        first.crawl(population[: len(population) // 2], checkpoint_path=ckpt)

        resumed_path = tmp_path / "resumed.jsonl"
        resumed = ledger_supervisor("crawl", ledger=ProbeLedger())
        resumed.crawl(
            population, checkpoint_path=ckpt, ledger_path=resumed_path
        )
        assert resumed.stats.resumed > 0
        assert full_path.read_bytes() == resumed_path.read_bytes()

    def test_checkpoint_omits_ledger_when_off(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        sup = ledger_supervisor()
        sup.crawl(ledger_population(), checkpoint_path=ckpt)
        assert "ledger" not in json.loads(ckpt.read_text())

    def test_checkpoint_carries_ledger_when_on(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        ledger = ProbeLedger()
        sup = ledger_supervisor(ledger=ledger)
        sup.crawl(ledger_population(), checkpoint_path=ckpt)
        payload = json.loads(ckpt.read_text())
        assert payload["ledger"] == ledger.state_dict()

    def test_ledger_metrics_folded_into_registry(self):
        ledger = ProbeLedger()
        sup = ledger_supervisor(ledger=ledger)
        sup.crawl(ledger_population())
        assert len(ledger) > 0
        state = sup.metrics.state_dict()
        op_counters = {
            name: value
            for name, value in state["counters"].items()
            if name.startswith("probe.ops.")
        }
        assert sum(op_counters.values()) == len(ledger)
        histogram = state["histograms"]["probe_accesses_per_probe"]
        assert histogram["count"] > 0

    def test_crawl_ledger_scopes_are_probe_scopes(self):
        ledger = ProbeLedger()
        sup = ledger_supervisor(ledger=ledger)
        sup.crawl(ledger_population())
        assert all(
            e.scope.startswith(PROBE_SCOPE_PREFIX) for e in ledger.entries
        )

    def test_probe_ledger_span_event_emitted(self):
        ledger = ProbeLedger()
        sup = ledger_supervisor(ledger=ledger)
        sup.crawl(ledger_population())
        events = [
            event
            for span in sup.tracer.spans
            for event in span.events or []
            if event.name == "probe.ledger"
        ]
        assert events
        assert sum(e.attrs["entries"] for e in events) == len(ledger)
