"""Closing the Appendix E loop: fit HLISA parameters from human data."""

import numpy as np
import pytest

from repro.experiment import HumanAgent, MovingClickTask, ScrollTask, TypingTask
from repro.humans.profile import HumanProfile
from repro.models.calibration import (
    calibrate_click_params,
    calibrate_scroll_params,
    calibrate_typing_params,
)


@pytest.fixture(scope="module")
def human():
    return HumanProfile(seed=1234)


class TestClickCalibration:
    def test_recovers_scatter_and_dwell(self, human):
        result = MovingClickTask(clicks=80).run(HumanAgent(human))
        params = calibrate_click_params(result.recorder.clicks())
        # Recovered magnitudes track the generator's parameters.
        assert 0.1 <= params.sigma_frac <= 0.7
        assert 50.0 <= params.dwell_mean_ms <= 150.0
        assert params.dwell_sd_ms > 5.0

    def test_explicit_target_override(self, human):
        from repro.geometry import Box

        result = MovingClickTask(clicks=20, element_size=90).run(HumanAgent(human))
        clicks = result.recorder.clicks()
        implicit = calibrate_click_params(clicks)
        explicit = calibrate_click_params([clicks[0]], result.target_boxes[0])
        assert implicit.sigma_frac > 0
        assert explicit.dwell_mean_ms == clicks[0].dwell_ms

    def test_empty_clicks_rejected(self):
        from repro.geometry import Box

        with pytest.raises(ValueError):
            calibrate_click_params([], Box(0, 0, 10, 10))


class TestTypingCalibration:
    def test_recovers_dwell_flight(self, human):
        result = TypingTask().run(HumanAgent(human))
        params = calibrate_typing_params(result.recorder.key_strokes())
        assert 60.0 <= params.dwell_mean_ms <= 140.0
        assert 60.0 <= params.flight_mean_ms <= 260.0
        assert params.dwell_sd_ms > 5.0

    def test_too_few_strokes_rejected(self):
        with pytest.raises(ValueError):
            calibrate_typing_params([])


class TestScrollCalibration:
    def test_recovers_tick_and_cadence(self, human):
        result = ScrollTask(page_height=6000).run(HumanAgent(human))
        params = calibrate_scroll_params(result.recorder)
        assert params.wheel_tick_px == pytest.approx(57.0, abs=1.0)
        assert 30.0 <= params.tick_pause_mean_ms <= 200.0
        assert params.finger_pause_mean_ms > params.tick_pause_mean_ms

    def test_too_few_ticks_rejected(self, human):
        from repro.events.recorder import EventRecorder

        with pytest.raises(ValueError):
            calibrate_scroll_params(EventRecorder())


class TestRoundTrip:
    def test_calibrated_hlisa_resembles_subject(self, human):
        """Fit typing params from the human, drive HLISA with them, and
        check the regenerated rhythm is close -- the workflow the paper
        describes for building HLISA's models."""
        from repro.analysis.typing_metrics import typing_metrics
        from repro.experiment import HLISAAgent

        human_result = TypingTask().run(HumanAgent(human))
        params = calibrate_typing_params(human_result.recorder.key_strokes())

        agent = HLISAAgent(seed=5)
        # Inject the calibrated parameters into the agent's next chain.
        from repro.models.typing_rhythm import TypingRhythm

        original_chain_factory = agent._chain_for

        def patched(session):
            chain = original_chain_factory(session)
            chain._typing = TypingRhythm(chain._rng, params)
            return chain

        agent._chain_for = patched
        hlisa_result = TypingTask().run(agent)

        human_metrics = typing_metrics(human_result.recorder.key_strokes())
        hlisa_metrics = typing_metrics(hlisa_result.recorder.key_strokes())
        assert hlisa_metrics.dwell_mean_ms == pytest.approx(
            human_metrics.dwell_mean_ms, rel=0.35
        )
        assert hlisa_metrics.chars_per_minute == pytest.approx(
            human_metrics.chars_per_minute, rel=0.5
        )
