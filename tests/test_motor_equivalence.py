"""Vectorised motor kernels vs their scalar golden references.

The human-motor hot path (pointing, Bézier trajectories, typing rhythms,
scroll cadences) is generated array-at-once; this suite asserts the
byte-identity contract against :mod:`repro.models.scalar_reference` --
same seed, same profile, same output, compared with ``==`` on the full
timestamped structures -- plus the three motor-timing regression fixes
and the batched dispatch path.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.browser.input_pipeline import InputPipeline
from repro.browser.window import Window
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box, Point
from repro.humans.pointing import (
    CORRECTION_MAX_FRAC,
    DEGENERATE_DISTANCE_PX,
    HumanPointing,
    _smoothed_noise,
    fitts_duration_ms,
)
from repro.humans.profile import HumanProfile
from repro.humans.scrolling import HumanScrolling
from repro.lint import render_text, run_lint
from repro.models.bezier import hlisa_path, naive_bezier_path
from repro.models.layouts import DE_LAYOUT, US_LAYOUT
from repro.models.refinements import LognormalTypingRhythm
from repro.models.scalar_reference import (
    ScalarHumanPointing,
    ScalarHumanScrolling,
    ScalarLognormalTypingRhythm,
    ScalarScrollCadence,
    ScalarTypingRhythm,
    scalar_hlisa_path,
    scalar_naive_bezier_path,
)
from repro.models.scroll_cadence import ScrollCadence
from repro.models.typing_rhythm import TypingRhythm

REPO_ROOT = Path(__file__).resolve().parents[1]

SEEDS = (0, 1, 7, 23, 1234)

#: Chord endpoints spanning short flicks to cross-viewport reaches.
TARGETS = (
    Point(7.0, 3.0),
    Point(63.0, 41.0),
    Point(411.0, 233.0),
    Point(1280.0, 15.0),
    Point(-340.0, 702.5),
)

PROFILES = (
    HumanProfile(),
    HumanProfile(jitter_px=0.4, correction_prob=1.0),
    HumanProfile(jitter_px=3.5, curve_amplitude_frac=0.12, correction_prob=0.0),
)

TEXTS = (
    "hello",
    "Hello, world! How are YOU today?",
    "Ends mid-sentence. Then: symbols @#/? and CAPS",
)


class TestPathEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("target", TARGETS, ids=str)
    @pytest.mark.parametrize("profile", PROFILES, ids=("default", "hooky", "smooth"))
    def test_human_pointing_matches_scalar_reference(self, seed, target, profile):
        start = Point(3.0, 7.0)
        fast = HumanPointing(profile, np.random.default_rng(seed)).path(start, target)
        slow = ScalarHumanPointing(profile, np.random.default_rng(seed)).path(start, target)
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("target", TARGETS, ids=str)
    def test_hlisa_path_matches_scalar_reference(self, seed, target):
        start = Point(12.0, 660.0)
        fast = hlisa_path(start, target, np.random.default_rng(seed))
        slow = scalar_hlisa_path(start, target, np.random.default_rng(seed))
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("target", TARGETS, ids=str)
    def test_naive_bezier_matches_scalar_reference(self, seed, target):
        start = Point(100.0, 100.0)
        fast = naive_bezier_path(start, target, np.random.default_rng(seed))
        slow = scalar_naive_bezier_path(start, target, np.random.default_rng(seed))
        assert fast == slow

    def test_explicit_duration_matches_too(self):
        fast = HumanPointing(rng=np.random.default_rng(5)).path(
            Point(0, 0), Point(300, 40), duration_ms=77.0
        )
        slow = ScalarHumanPointing(rng=np.random.default_rng(5)).path(
            Point(0, 0), Point(300, 40), duration_ms=77.0
        )
        assert fast == slow


class TestTypingEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("text", TEXTS, ids=("plain", "punct", "symbols"))
    @pytest.mark.parametrize("layout", (US_LAYOUT, DE_LAYOUT), ids=("us", "de"))
    def test_normal_rhythm_matches_scalar_reference(self, seed, text, layout):
        fast = TypingRhythm(np.random.default_rng(seed), layout=layout).plan(text)
        slow = ScalarTypingRhythm(np.random.default_rng(seed), layout=layout).plan(text)
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("text", TEXTS, ids=("plain", "punct", "symbols"))
    def test_lognormal_rhythm_matches_scalar_reference(self, seed, text):
        fast = LognormalTypingRhythm(np.random.default_rng(seed)).plan(text)
        slow = ScalarLognormalTypingRhythm(np.random.default_rng(seed)).plan(text)
        assert fast == slow

    def test_empty_text_plans_nothing(self):
        assert TypingRhythm(np.random.default_rng(0)).plan("") == []


class TestScrollEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("distance", (57.0, 120.0, -900.0, 3000.0, 29999.5))
    def test_cadence_matches_scalar_reference(self, seed, distance):
        fast = ScrollCadence(np.random.default_rng(seed)).plan(distance)
        slow = ScalarScrollCadence(np.random.default_rng(seed)).plan(distance)
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("distance", (57.0, -400.0, 2500.0))
    def test_human_scrolling_matches_scalar_reference(self, seed, distance):
        fast = HumanScrolling(rng=np.random.default_rng(seed)).plan(distance)
        slow = ScalarHumanScrolling(rng=np.random.default_rng(seed)).plan(distance)
        assert fast == slow

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scrollbar_drag_matches_scalar_reference(self, seed):
        fast = HumanScrolling(rng=np.random.default_rng(seed)).plan_scrollbar_drag(
            1800.0, 40.0
        )
        slow = ScalarHumanScrolling(rng=np.random.default_rng(seed)).plan_scrollbar_drag(
            1800.0, 40.0
        )
        assert fast == slow


class TestCorrectionHookRegression:
    """The corrective hook stays inside the sampled movement duration."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("duration_ms", (24.0, 50.0, 300.0))
    def test_hook_is_monotone_lands_on_end_and_bounded(self, seed, duration_ms):
        profile = HumanProfile(correction_prob=1.0)
        pointing = HumanPointing(profile, np.random.default_rng(seed))
        end = Point(400.0, 150.0)
        path = pointing.path(Point(0.0, 0.0), end, duration_ms=duration_ms)
        times = [t for t, _ in path]
        assert times == sorted(times), "timestamps must be monotone"
        assert len(times) == len(set(times)), "hook samples must advance time"
        assert path[-1][1] == end, "the hook must land exactly on the target"
        # Pre-fix, floor-clamped durations reused the pre-hook dt and the
        # landing time exceeded the sampled duration by >50%.
        assert times[-1] <= duration_ms * (1.0 + CORRECTION_MAX_FRAC) + 1e-9

    def test_short_clamped_duration_was_the_failing_case(self):
        # duration floored to 2 * sample_interval -> n = 3, dt = duration/2:
        # the unbounded hook added up to 5 * dt = 2.5x the duration.
        profile = HumanProfile(correction_prob=1.0)
        pointing = HumanPointing(profile, np.random.default_rng(3))
        duration = 2.0 * profile.sample_interval_ms
        path = pointing.path(Point(0.0, 0.0), Point(120.0, 0.0), duration_ms=duration)
        assert path[-1][0] <= duration * (1.0 + CORRECTION_MAX_FRAC) + 1e-9


class TestSmoothedNoiseRegression:
    """Kernel-sized paths are smoothed too (n == kernel boundary)."""

    def test_kernel_sized_noise_is_convolved(self):
        raw = np.random.default_rng(11).normal(0.0, 2.0, size=3)
        expected_middle = np.convolve(raw, np.ones(3) / 3.0, mode="same")[1]
        smoothed = _smoothed_noise(np.random.default_rng(11), 3, 2.0)
        assert smoothed[0] == 0.0 and smoothed[-1] == 0.0
        assert smoothed[1] == expected_middle
        assert smoothed[1] != raw[1], "3-sample paths used to carry raw tremor"

    def test_below_kernel_stays_raw_but_zeroed(self):
        smoothed = _smoothed_noise(np.random.default_rng(11), 2, 2.0)
        assert smoothed.tolist() == [0.0, 0.0]

    def test_empty_noise(self):
        assert _smoothed_noise(np.random.default_rng(0), 0, 1.0).size == 0


class TestDegenerateMoveRegression:
    """A zero-distance move takes no time anywhere in the stack."""

    def test_fitts_duration_is_zero_not_a(self):
        assert fitts_duration_ms(0.0, 30.0) == 0.0
        assert fitts_duration_ms(DEGENERATE_DISTANCE_PX / 2.0, 30.0) == 0.0
        assert fitts_duration_ms(100.0, 30.0) > 0.0

    def test_duration_ms_is_zero_and_draws_nothing(self):
        pointing = HumanPointing(rng=np.random.default_rng(9))
        before = pointing.rng.bit_generator.state["state"]["state"]
        assert pointing.duration_ms(Point(5, 5), Point(5, 5), 30.0) == 0.0
        after = pointing.rng.bit_generator.state["state"]["state"]
        assert before == after, "degenerate moves must not consume the stream"

    def test_path_is_a_single_stationary_sample(self):
        pointing = HumanPointing(rng=np.random.default_rng(9))
        assert pointing.path(Point(5, 5), Point(5, 5)) == [(0.0, Point(5, 5))]


def _make_rig():
    document = Document(1366.0, 2000.0)
    document.create_element("button", Box(100.0, 100.0, 200.0, 80.0), id="b1")
    document.create_element("a", Box(600.0, 300.0, 150.0, 40.0), id="l1")
    window = Window(document)
    pipeline = InputPipeline(window)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(window)
    return window, pipeline, recorder


def _stream(recorder):
    return [
        (e.type, e.timestamp, e.client_x, e.client_y, getattr(e.target, "id", None))
        for e in recorder.events
    ]


class TestDispatchBatch:
    def _path(self):
        return HumanPointing(rng=np.random.default_rng(17)).path(
            Point(10.0, 10.0), Point(650.0, 320.0)
        )

    def test_matches_per_point_loop_with_trailing_forced_move(self):
        path = self._path()
        window_a, pipeline_a, recorder_a = _make_rig()
        previous = 0.0
        for t, point in path:
            window_a.clock.advance(max(t - previous, 0.0))
            pipeline_a.move_mouse_to(point.x, point.y)
            previous = t
        pipeline_a.move_mouse_to(path[-1][1].x, path[-1][1].y, force_event=True)

        window_b, pipeline_b, recorder_b = _make_rig()
        moves = []
        previous = 0.0
        for t, point in path:
            moves.append((max(t - previous, 0.0), point))
            previous = t
        pipeline_b.dispatch_batch(moves, repeat_final_forced=True)

        assert _stream(recorder_a) == _stream(recorder_b)
        assert window_a.clock.now() == window_b.clock.now()
        assert pipeline_a.pointer == pipeline_b.pointer

    def test_force_last_matches_forced_final_move(self):
        path = self._path()
        window_a, pipeline_a, recorder_a = _make_rig()
        for index, (t, point) in enumerate(path):
            window_a.clock.advance(4.0)
            pipeline_a.move_mouse_to(
                point.x, point.y, force_event=(index == len(path) - 1)
            )

        window_b, pipeline_b, recorder_b = _make_rig()
        pipeline_b.dispatch_batch(
            ((4.0, point) for _, point in path), force_last=True
        )

        assert _stream(recorder_a) == _stream(recorder_b)
        assert recorder_b.of_type("mousemove"), "final move must dispatch"

    def test_empty_batch_is_a_no_op(self):
        window, pipeline, recorder = _make_rig()
        assert pipeline.dispatch_batch([]) == 0
        assert recorder.events == []
        assert window.clock.now() == 0.0

    def test_returns_dispatched_mousemove_count(self):
        path = self._path()
        _, pipeline, recorder = _make_rig()
        count = pipeline.dispatch_batch(
            [(max(t, 0.0), p) for t, p in path], force_last=True
        )
        assert count == len(recorder.of_type("mousemove"))


class TestMotorModulesStayLintClean:
    """The numpy kernels must not regress the whole-program invariants."""

    def test_no_perf_or_determinism_findings(self):
        targets = [
            REPO_ROOT / "src" / "repro" / "humans" / "pointing.py",
            REPO_ROOT / "src" / "repro" / "humans" / "scrolling.py",
            REPO_ROOT / "src" / "repro" / "models" / "bezier.py",
            REPO_ROOT / "src" / "repro" / "models" / "typing_rhythm.py",
            REPO_ROOT / "src" / "repro" / "models" / "refinements.py",
            REPO_ROOT / "src" / "repro" / "models" / "scroll_cadence.py",
            REPO_ROOT / "src" / "repro" / "models" / "scalar_reference.py",
            REPO_ROOT / "src" / "repro" / "browser" / "input_pipeline.py",
        ]
        report = run_lint(targets, root=REPO_ROOT)
        flagged = [
            finding
            for finding in report.new_findings
            if finding.rule.startswith(("PERF", "DET"))
        ]
        assert flagged == [], render_text(report)
