"""End-to-end integration: the paper's headline flows in one place."""

import numpy as np
import pytest

from repro import HLISA_ActionChains, make_browser_driver
from repro.analysis import click_metrics, typing_metrics
from repro.analysis.trajectory import per_movement_metrics
from repro.crawl import OpenWPMCrawler, PopulationConfig, generate_population
from repro.crawl.evaluation import evaluate_http_errors, evaluate_screenshots
from repro.detection import DetectorBattery, DetectionLevel
from repro.detection.fingerprint import run_all_probes
from repro.experiment import BrowsingScenario, HLISAAgent, MovingClickTask, SeleniumAgent
from repro.spoofing import SpoofingExtension


class TestListing2:
    def test_quickstart_flow(self):
        """The paper's Listing 2, end to end."""
        driver = make_browser_driver()
        ac = HLISA_ActionChains(driver, seed=9)
        element = driver.find_element_by_id("text_area")
        ac.move_to_element(element)
        ac.send_keys_to_element(element, "Text..")
        ac.perform()
        assert element.get_attribute("value") == "Text.."


class TestHeadlineClaims:
    def test_selenium_flagged_hlisa_not(self):
        """One sentence of the paper, as an executable assertion: 'Before
        HLISA, bot interaction was detectable by its artificial nature.'"""
        battery = DetectorBattery(DetectionLevel.DEVIATION)
        selenium_rec = BrowsingScenario(clicks=30).run(SeleniumAgent()).recorder
        hlisa_rec = BrowsingScenario(clicks=30).run(HLISAAgent()).recorder
        assert battery.evaluate(selenium_rec).is_bot
        assert not battery.evaluate(hlisa_rec).is_bot

    def test_spoofing_hides_webdriver_from_flag_checkers(self):
        from repro.browser.navigator import NavigatorProfile
        from repro.browser.window import Window

        window = Window(profile=NavigatorProfile(webdriver=True))
        assert run_all_probes(window).webdriver_visible
        SpoofingExtension().inject(window)
        result = run_all_probes(window)
        assert not result.webdriver_visible
        assert result.spoofing_detected  # ... but not side-effect free

    def test_mini_field_study_shape(self):
        """A scaled-down Section 3.2: spoofing slashes visible blocking
        and first-party errors."""
        config = PopulationConfig(
            n_sites=150,
            seed=42,
            n_no_ads_detectors=2,
            n_less_ads_detectors=1,
            n_block_detectors=2,
            n_captcha_detectors=1,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=1,
            n_http_only_detectors=5,
            n_layout_breakage=1,
            n_video_breakage=1,
        )
        population = generate_population(config)
        baseline = OpenWPMCrawler("base", None, instances=4, seed=1).crawl(population)
        extended = OpenWPMCrawler(
            "ext", SpoofingExtension(), instances=4, seed=2
        ).crawl(population)
        base_eval = evaluate_screenshots(baseline)
        ext_eval = evaluate_screenshots(extended)
        assert base_eval.affected_sites > ext_eval.affected_sites
        http = evaluate_http_errors(baseline, extended)
        assert http.baseline_first_party_errors > http.extended_first_party_errors


class TestFigureSignatures:
    def test_fig1_shapes(self):
        """Selenium straight+uniform; HLISA curved+eased+jittery."""
        selenium_rec = MovingClickTask(clicks=6).run(SeleniumAgent()).recorder
        hlisa_rec = MovingClickTask(clicks=6).run(HLISAAgent()).recorder
        sel = [
            m for m in per_movement_metrics(selenium_rec.mouse_path())
            if m.chord_length > 200
        ]
        hli = [
            m for m in per_movement_metrics(hlisa_rec.mouse_path())
            if m.chord_length > 200
        ]
        assert np.mean([m.straightness for m in sel]) > 0.999
        assert np.mean([m.speed_cv for m in sel]) < 0.1
        assert np.mean([m.straightness for m in hli]) < 0.999
        assert np.mean([m.speed_cv for m in hli]) > 0.3

    def test_fig2_shapes(self):
        """Selenium: all centre. HLISA: clustered, never corners."""
        for agent, expect_center in ((SeleniumAgent(), True), (HLISAAgent(), False)):
            result = MovingClickTask(clicks=30).run(agent)
            clicks = result.recorder.clicks()
            metrics = click_metrics(
                [c.position for c in clicks],
                [c.target_box for c in clicks],
            )
            if expect_center:
                assert metrics.exact_center_rate > 0.9
            else:
                assert metrics.exact_center_rate < 0.2
                assert metrics.corner_rate == 0.0

    def test_typing_contrast(self):
        from repro.experiment import TypingTask

        selenium = typing_metrics(
            TypingTask().run(SeleniumAgent()).recorder.key_strokes()
        )
        hlisa = typing_metrics(TypingTask().run(HLISAAgent()).recorder.key_strokes())
        assert selenium.chars_per_minute > 10000
        assert hlisa.chars_per_minute < 900
        assert selenium.shifted_without_modifier > 0
        assert hlisa.shifted_without_modifier == 0
