"""Whole-program analysis: call graph, taint, SHD/BUS rules, reporters.

Fixture tests build small in-memory or on-disk trees; the self-hosting
meta-tests at the bottom run the engine over the real ``src/repro``
tree and pin the acceptance criteria (every Resolvable has a resolving
handler, every default watchdog handler is registered, the
visit-reachable shard inventory is empty, baselined whole-program
entries carry justifications).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.lint import (
    Baseline,
    ModuleContext,
    all_project_rules,
    build_project,
    collect_files,
    render_json,
    render_sarif,
    render_text,
    run_lint,
)
from repro.lint.cli import main
from repro.lint.graph import (
    ProjectContext,
    module_name_for,
    witness_chain,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def project_from(files: dict) -> ProjectContext:
    """Build a ProjectContext from {display_path: source} fixtures."""
    contexts = {}
    for display, source in files.items():
        source = dedent(source)
        ctx = ModuleContext(display, source, ast.parse(source))
        contexts[module_name_for(display)] = ctx
    return ProjectContext(contexts)


def project_rule_ids(files: dict) -> list:
    """Sorted whole-program rule ids firing on the fixture tree."""
    project = project_from(files)
    out = []
    for rule in all_project_rules():
        for finding in rule.check_project(project):
            ctx = project.context_for(finding.path)
            if ctx is not None and ctx.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            out.append(finding)
    return sorted(f.rule for f in out)


def write_tree(tmp_path: Path, files: dict) -> Path:
    for display, source in files.items():
        target = tmp_path / display
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(dedent(source), encoding="utf-8")
    return tmp_path


def edge_pairs(project: ProjectContext) -> set:
    return {(s.caller, s.callee) for s in project.call_graph.edges}


# -- module naming ---------------------------------------------------------


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/crawl/visit.py") == (
            "repro.crawl.visit"
        )

    def test_init_maps_to_package(self):
        assert module_name_for("pkg/sub/__init__.py") == "pkg.sub"

    def test_bare_file(self):
        assert module_name_for("mod.py") == "mod"


# -- symbol table ----------------------------------------------------------


class TestSymbolTable:
    def test_import_alias_resolution(self):
        project = project_from(
            {
                "app/helpers.py": """
                def stamp():
                    return 0
                """,
                "app/use.py": """
                import app.helpers as h

                def caller():
                    return h.stamp()
                """,
            }
        )
        assert ("app.use.caller", "app.helpers.stamp") in edge_pairs(project)

    def test_reexport_chain_through_init(self):
        project = project_from(
            {
                "pkg/__init__.py": """
                from pkg.mod import helper
                """,
                "pkg/mod.py": """
                def helper():
                    return 1
                """,
                "use.py": """
                from pkg import helper

                def caller():
                    return helper()
                """,
            }
        )
        assert ("use.caller", "pkg.mod.helper") in edge_pairs(project)

    def test_relative_import_resolution(self):
        project = project_from(
            {
                "pkg/__init__.py": "",
                "pkg/base.py": """
                def helper():
                    return 1
                """,
                "pkg/use.py": """
                from .base import helper

                def caller():
                    return helper()
                """,
            }
        )
        assert ("pkg.use.caller", "pkg.base.helper") in edge_pairs(project)

    def test_method_lookup_through_bases(self):
        project = project_from(
            {
                "app/base.py": """
                class Base:
                    def step(self):
                        return 0
                """,
                "app/impl.py": """
                from app.base import Base

                class Impl(Base):
                    pass
                """,
            }
        )
        found = project.symbols.method_in_hierarchy("app.impl.Impl", "step")
        assert found is not None
        assert found.qualname == "app.base.Base.step"

    def test_subclasses_transitive(self):
        project = project_from(
            {
                "app/h.py": """
                class A:
                    pass

                class B(A):
                    pass

                class C(B):
                    pass
                """,
            }
        )
        assert project.symbols.subclasses("app.h.A") == [
            "app.h.B",
            "app.h.C",
        ]


# -- call graph ------------------------------------------------------------


class TestCallGraph:
    def test_self_call_reaches_subclass_override(self):
        project = project_from(
            {
                "app/base.py": """
                class Base:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 0
                """,
                "app/impl.py": """
                from app.base import Base

                class Impl(Base):
                    def step(self):
                        return 1
                """,
            }
        )
        pairs = edge_pairs(project)
        assert ("app.base.Base.run", "app.base.Base.step") in pairs
        assert ("app.base.Base.run", "app.impl.Impl.step") in pairs

    def test_class_instantiation_resolves_init(self):
        project = project_from(
            {
                "app/c.py": """
                class Thing:
                    def __init__(self):
                        self.x = 1
                """,
                "app/d.py": """
                from app.c import Thing

                def make():
                    return Thing()
                """,
            }
        )
        assert ("app.d.make", "app.c.Thing.__init__") in edge_pairs(project)

    def test_unique_method_name_resolves(self):
        project = project_from(
            {
                "app/a.py": """
                class Driver:
                    def navigate(self, url):
                        return url
                """,
                "app/b.py": """
                def go(d):
                    return d.navigate("x")
                """,
            }
        )
        assert ("app.b.go", "app.a.Driver.navigate") in edge_pairs(project)

    def test_builtin_container_names_never_unique_resolve(self):
        project = project_from(
            {
                "app/a.py": """
                class Store:
                    def get(self, key):
                        return key
                """,
                "app/b.py": """
                def fetch(d):
                    return d.get("x")
                """,
            }
        )
        assert ("app.b.fetch", "app.a.Store.get") not in edge_pairs(project)

    def test_module_level_code_owned_by_module_node(self):
        project = project_from(
            {
                "app/m.py": """
                def setup():
                    return 1

                VALUE = setup()
                """,
            }
        )
        assert ("app.m.<module>", "app.m.setup") in edge_pairs(project)

    def test_edges_deterministically_sorted(self):
        files = {
            "app/a.py": """
            def one():
                return two() + three()

            def two():
                return 1

            def three():
                return 2
            """,
        }
        first = project_from(files).call_graph.edges
        second = project_from(files).call_graph.edges
        assert first == second
        assert first == sorted(first, key=lambda s: s.sort_key)


# -- taint -----------------------------------------------------------------


class TestTaint:
    def test_wall_clock_propagates_two_hops(self):
        project = project_from(
            {
                "app/clock.py": """
                import time

                def now():
                    return time.time()
                """,
                "app/mid.py": """
                from app.clock import now

                def stamp():
                    return now()
                """,
            }
        )
        tainted = project.taint("wall-clock")
        assert tainted["app.clock.now"].next_hop is None
        assert tainted["app.mid.stamp"].next_hop == "app.clock.now"
        assert witness_chain(tainted, "app.mid.stamp") == (
            "stamp -> now -> time.time()"
        )

    def test_sorted_fs_enumeration_is_not_tainted(self):
        project = project_from(
            {
                "app/fsio.py": """
                import os

                def listing(path):
                    return sorted(os.listdir(path))
                """,
            }
        )
        assert project.taint("fs-order") == {}

    def test_global_rng_taint(self):
        project = project_from(
            {
                "app/rand.py": """
                import random

                def draw():
                    return random.random()
                """,
            }
        )
        assert "app.rand.draw" in project.taint("global-rng")


# -- XDET rules ------------------------------------------------------------


class TestXdetRules:
    def test_xdet101_visit_reaches_wall_clock(self):
        ids = project_rule_ids(
            {
                "app/helpers.py": """
                import time

                def stamp():
                    return time.time()
                """,
                "app/visit.py": """
                from app.helpers import stamp

                def simulate_visit():
                    return stamp()
                """,
            }
        )
        assert "XDET101" in ids

    def test_xdet101_negative_when_unreachable(self):
        ids = project_rule_ids(
            {
                "app/helpers.py": """
                import time

                def stamp():
                    return time.time()
                """,
                "app/other.py": """
                from app.helpers import stamp

                def offline_report():
                    return stamp()
                """,
            }
        )
        assert "XDET101" not in ids

    def test_xdet102_visit_reaches_global_rng(self):
        ids = project_rule_ids(
            {
                "app/rand.py": """
                import random

                def draw():
                    return random.random()
                """,
                "app/visit.py": """
                from app.rand import draw

                def simulate_visit():
                    return draw()
                """,
            }
        )
        assert "XDET102" in ids

    def test_xdet103_checkpoint_reaches_fs_order(self):
        ids = project_rule_ids(
            {
                "app/fsio.py": """
                import os

                def snapshot(path):
                    return os.listdir(path)
                """,
                "app/ckpt.py": """
                from app.fsio import snapshot

                def _write_checkpoint(path):
                    return snapshot(path)
                """,
            }
        )
        assert "XDET103" in ids

    def test_xdet103_negative_when_sorted(self):
        ids = project_rule_ids(
            {
                "app/fsio.py": """
                import os

                def snapshot(path):
                    return sorted(os.listdir(path))
                """,
                "app/ckpt.py": """
                from app.fsio import snapshot

                def _write_checkpoint(path):
                    return snapshot(path)
                """,
            }
        )
        assert "XDET103" not in ids

    def test_supervisor_crawl_is_a_visit_root(self):
        ids = project_rule_ids(
            {
                "app/clockio.py": """
                import time

                def now():
                    return time.time()
                """,
                "app/sup.py": """
                from app.clockio import now

                class CrawlSupervisor:
                    def crawl(self):
                        return now()
                """,
            }
        )
        assert "XDET101" in ids


# -- SHD rules -------------------------------------------------------------


class TestShardRules:
    def test_shd001_visit_path_mutation(self):
        ids = project_rule_ids(
            {
                "app/state.py": """
                CACHE = {}

                def remember(key, value):
                    CACHE[key] = value
                """,
                "app/visit.py": """
                from app.state import remember

                def simulate_visit():
                    remember("a", 1)
                """,
            }
        )
        assert "SHD001" in ids
        assert "SHD003" not in ids  # hot sites are not inventory entries

    def test_shd001_mutator_method_call(self):
        ids = project_rule_ids(
            {
                "app/state.py": """
                SEEN = []

                def simulate_visit(url):
                    SEEN.append(url)
                """,
            }
        )
        assert "SHD001" in ids

    def test_local_shadowing_is_clean(self):
        ids = project_rule_ids(
            {
                "app/state.py": """
                CACHE = {}

                def simulate_visit():
                    CACHE = {}
                    CACHE["a"] = 1
                    return CACHE
                """,
            }
        )
        assert ids == []

    def test_shd002_global_rebind(self):
        ids = project_rule_ids(
            {
                "app/state.py": """
                LIMIT = None

                def simulate_visit():
                    global LIMIT
                    LIMIT = 10
                """,
            }
        )
        assert "SHD002" in ids

    def test_shd003_inventory_off_visit_path(self):
        ids = project_rule_ids(
            {
                "app/registry.py": """
                REGISTRY = {}

                def register(name):
                    REGISTRY[name] = True
                """,
            }
        )
        assert ids == ["SHD003"]

    def test_shd003_suppressed_inline(self):
        ids = project_rule_ids(
            {
                "app/registry.py": """
                REGISTRY = {}  # repro-lint: disable=SHD003

                def register(name):
                    REGISTRY[name] = True
                """,
            }
        )
        assert ids == []

    def test_import_time_mutation_is_exempt(self):
        ids = project_rule_ids(
            {
                "app/registry.py": """
                REGISTRY = {}
                REGISTRY["boot"] = True
                """,
            }
        )
        assert ids == []


# -- BUS rules -------------------------------------------------------------

_BUSLIB = """
class BusEvent:
    pass


class Resolvable(BusEvent):
    pass
"""


class TestBusRules:
    def test_bus001_unsubscribed_event(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import BusEvent

                class Ping(BusEvent):
                    pass
                """,
            }
        )
        assert ids == ["BUS001"]

    def test_bus001_negative_with_subscriber(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import BusEvent

                class Ping(BusEvent):
                    pass
                """,
                "app/wire.py": """
                from app.events import Ping

                def on_ping(event):
                    return None

                def attach(bus):
                    bus.subscribe(Ping, on_ping)
                """,
            }
        )
        assert ids == []

    def test_bus001_base_subscription_covers_subclass(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import BusEvent

                class Fault(BusEvent):
                    pass

                class CrashFault(Fault):
                    pass
                """,
                "app/wire.py": """
                from app.events import Fault

                def on_fault(event):
                    return None

                def attach(bus):
                    bus.subscribe(Fault, on_fault)
                """,
            }
        )
        assert ids == []

    def test_bus002_published_resolvable_without_resolver(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import Resolvable

                class OverlaySeen(Resolvable):
                    pass
                """,
                "app/wire.py": """
                from app.events import OverlaySeen

                def confront(bus):
                    bus.publish(OverlaySeen())
                """,
            }
        )
        assert "BUS002" in ids

    def test_bus002_negative_when_handler_resolves(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import Resolvable

                class OverlaySeen(Resolvable):
                    pass
                """,
                "app/wire.py": """
                from app.events import OverlaySeen

                def on_overlay(event):
                    event.resolve("watchdog", "dismissed")

                def attach(bus):
                    bus.subscribe(OverlaySeen, on_overlay)

                def confront(bus):
                    bus.publish(OverlaySeen())
                """,
            }
        )
        assert "BUS002" not in ids

    def test_bus003_handler_mutates_payload(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import BusEvent

                class Ping(BusEvent):
                    pass
                """,
                "app/wire.py": """
                from app.events import Ping

                def on_ping(event):
                    event.note = "seen"

                def attach(bus):
                    bus.subscribe(Ping, on_ping)
                """,
            }
        )
        assert "BUS003" in ids

    def test_bus003_sanctioned_fields_are_clean(self):
        ids = project_rule_ids(
            {
                "app/buslib.py": _BUSLIB,
                "app/events.py": """
                from app.buslib import BusEvent

                class RunCmd(BusEvent):
                    pass
                """,
                "app/wire.py": """
                from app.events import RunCmd

                def on_cmd(event):
                    event.handled = True
                    event.result = 3

                def attach(bus):
                    bus.subscribe(RunCmd, on_cmd)
                """,
            }
        )
        assert "BUS003" not in ids


# -- driver integration ----------------------------------------------------

_MIXED_TREE = {
    "app/helpers.py": """
    import time

    def stamp():
        return time.time()
    """,
    "app/visit.py": """
    from app.helpers import stamp
    from app.state import remember

    def simulate_visit():
        remember("t", stamp())
    """,
    "app/state.py": """
    CACHE = {}

    def remember(key, value):
        CACHE[key] = value
    """,
    "app/buslib.py": _BUSLIB,
    "app/events.py": """
    from app.buslib import BusEvent

    class Ping(BusEvent):
        pass
    """,
}


class TestDriverIntegration:
    def test_whole_program_findings_flow_through_report(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        report = run_lint([root], root=root)
        ids = {f.rule for f in report.new_findings}
        assert {"DET001", "XDET101", "SHD001", "BUS001"} <= ids

    def test_no_whole_program_flag_drops_graph_findings(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        report = run_lint([root], root=root, whole_program=False)
        ids = {f.rule for f in report.new_findings}
        assert "DET001" in ids
        assert not ids & {"XDET101", "SHD001", "BUS001"}

    def test_serial_parallel_byte_identity_with_graph_findings(
        self, tmp_path
    ):
        root = write_tree(tmp_path, _MIXED_TREE)
        serial = run_lint([root], root=root, jobs=1)
        parallel = run_lint([root], root=root, jobs=4)
        assert render_json(serial) == render_json(parallel)
        assert render_text(serial) == render_text(parallel)
        assert render_sarif(serial) == render_sarif(parallel)

    def test_whole_program_findings_are_baselinable(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        baseline_path = root / "lint-baseline.json"
        first = run_lint([root], root=root)
        Baseline.write(baseline_path, first.all_findings)
        second = run_lint(
            [root], root=root, baseline=Baseline.load(baseline_path)
        )
        assert second.new_findings == []
        assert len(second.baselined) == len(first.new_findings)
        assert second.exit_code == 0

    def test_baseline_rewrite_preserves_justifications(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        baseline_path = root / "lint-baseline.json"
        report = run_lint([root], root=root)
        Baseline.write(baseline_path, report.all_findings)
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        fp = sorted(data["findings"])[0]
        data["findings"][fp]["justification"] = "intentional, see docs"
        baseline_path.write_text(json.dumps(data), encoding="utf-8")
        previous = Baseline.load(baseline_path)
        Baseline.write(baseline_path, report.all_findings, previous=previous)
        rewritten = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert rewritten["findings"][fp]["justification"] == (
            "intentional, see docs"
        )


# -- reporters -------------------------------------------------------------


class TestSarif:
    def test_sarif_round_trips_the_json_report(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        report = run_lint([root], root=root)
        json_payload = json.loads(render_json(report))
        sarif = json.loads(render_sarif(report))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        sarif_keys = {
            (
                r["ruleId"],
                r["locations"][0]["physicalLocation"]["artifactLocation"][
                    "uri"
                ],
                r["locations"][0]["physicalLocation"]["region"]["startLine"],
                r["message"]["text"],
            )
            for r in run["results"]
        }
        json_keys = {
            (f["rule"], f["path"], f["line"], f["message"])
            for f in json_payload["findings"] + json_payload["baselined"]
        }
        assert sarif_keys == json_keys
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"XDET101", "SHD001", "BUS001", "DET001"} <= rule_ids

    def test_sarif_marks_baselined_as_suppressed(self, tmp_path):
        root = write_tree(tmp_path, _MIXED_TREE)
        baseline_path = root / "lint-baseline.json"
        first = run_lint([root], root=root)
        Baseline.write(baseline_path, first.all_findings)
        second = run_lint(
            [root], root=root, baseline=Baseline.load(baseline_path)
        )
        sarif = json.loads(render_sarif(second))
        results = sarif["runs"][0]["results"]
        assert results
        assert all(
            r.get("suppressions") == [{"kind": "external"}] for r in results
        )

    def test_cli_sarif_format(self, tmp_path, capsys):
        root = write_tree(tmp_path, _MIXED_TREE)
        code = main(
            [
                str(root),
                "--root",
                str(root),
                "--no-baseline",
                "--format",
                "sarif",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


class TestListRules:
    def test_rules_grouped_by_family_with_scopes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in (
            "bus-contract:",
            "determinism:",
            "shard:",
            "xdet:",
        ):
            assert family in out
        assert "  XDET101  [whole-program]" in out
        assert "  SHD001  [whole-program]" in out
        # Scoped per-module rules show the path components they bind to.
        assert "paths (" in out

    def test_family_sections_contain_their_rules(self, capsys):
        main(["--list-rules"])
        out = capsys.readouterr().out
        xdet_section = out.split("xdet:")[1]
        assert "XDET101" in xdet_section
        assert "XDET102" in xdet_section
        assert "XDET103" in xdet_section


# -- self-hosting meta-tests (acceptance criteria) -------------------------


@pytest.fixture(scope="module")
def repo_project() -> ProjectContext:
    files = collect_files([REPO_ROOT / "src" / "repro"], REPO_ROOT)
    return build_project(files)


class TestSelfHosting:
    def test_every_resolvable_has_a_resolving_handler(self, repo_project):
        bus = repo_project.bus
        resolvables = [
            qualname
            for qualname in bus.concrete_events()
            if bus.events[qualname].resolvable
        ]
        assert resolvables, "expected Resolvable events in repro.bus.events"
        for qualname in resolvables:
            subs = bus.subscriptions_for(qualname)
            assert subs, f"{qualname} has no subscriber"
            assert any(
                bus.handler_resolves(sub) for sub in subs
            ), f"{qualname} is never resolved by any handler"

    def test_every_default_watchdog_handler_is_registered(self, repo_project):
        registered = {
            sub.handler.qualname
            for sub in repo_project.bus.subscriptions
            if sub.handler is not None
        }
        expected = {
            "repro.crawl.watchdogs.crash.CrashWatchdog.on_fault_observed",
            "repro.crawl.watchdogs.modal.ModalOverlayWatchdog."
            "on_overlay_detected",
            "repro.crawl.watchdogs.modal.ModalOverlayWatchdog."
            "on_challenge_detected",
            "repro.crawl.watchdogs.modal.ModalOverlayWatchdog."
            "on_input_obstructed",
            "repro.crawl.watchdogs.recycle.RecycleWatchdog.on_fault_observed",
            "repro.crawl.watchdogs.stall.StallWatchdog.on_page_stalled",
            "repro.crawl.supervisor.CrawlSupervisor._on_recycle_requested",
            "repro.browser.session.BrowserSession.on_navigate",
            "repro.browser.session.BrowserSession.on_query",
            "repro.browser.session.BrowserSession.on_run_script",
            "repro.browser.session.BrowserSession.on_scroll_to",
        }
        missing = expected - registered
        assert not missing, f"handlers invisible to BUS rules: {missing}"

    def test_visit_reachable_shard_inventory_is_empty(self, repo_project):
        reach = repo_project.reachable(families=("visit",))
        # The sharded executor path is visit scope: its entry points
        # (run_sharded_crawl driving run_shard driving crawl_shard) are
        # visit roots, so SHD001-003 police the pool workers too.
        expected_shard_scope = {
            "repro.shard.executor.run_sharded_crawl",
            "repro.shard.worker.run_shard",
            "repro.shard.worker.build_supervisor",
            "repro.shard.state.fault_log_from_spans",
            "repro.shard.merge.merge_shards",
            "repro.crawl.supervisor.CrawlSupervisor.crawl_shard",
            "repro.crawl.supervisor.CrawlSupervisor.crawl",
        }
        missing = expected_shard_scope - set(reach)
        assert not missing, (
            f"repro.shard entry points missing from visit scope: {missing}"
        )
        reached_modules = {q.rsplit(".", 2)[0] for q in reach}
        assert any(m.startswith("repro.shard") for m in reached_modules)
        hot = [
            site
            for site in repo_project.mutation_sites
            if site.owner in reach
        ]
        assert hot == [], (
            "module-level mutable state reachable from visit paths: "
            f"{[(s.target, s.owner) for s in hot]}"
        )

    def test_baselined_whole_program_entries_are_justified(self):
        baseline_path = REPO_ROOT / "lint-baseline.json"
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        for fp, entry in data["findings"].items():
            family = entry["rule"][:3]
            if family in ("SHD", "BUS", "XDE"):
                assert entry.get("justification"), (
                    f"baselined whole-program finding {fp} ({entry['rule']} "
                    f"in {entry['path']}) has no justification"
                )

    def test_whole_program_pass_is_deterministic(self, repo_project):
        files = collect_files([REPO_ROOT / "src" / "repro"], REPO_ROOT)
        from repro.lint.graph import lint_project

        first, first_suppressed = lint_project(files)
        second, second_suppressed = lint_project(files)
        assert first == second
        assert first_suppressed == second_suppressed
