"""Experiment-level behaviours (Appendix F) and the origin detector."""

import numpy as np
import pytest

from repro.behaviors import (
    OriginStartDetector,
    SpontaneousMovements,
    TypoGenerator,
    idle_select_deselect,
    misclick_then_correct,
    warm_up_cursor,
)
from repro.behaviors.typing_errors import BACKSPACE
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.webdriver.driver import make_browser_driver


@pytest.fixture
def rig():
    driver = make_browser_driver()
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder


class TestWarmUp:
    def test_moves_cursor_off_origin(self, rig):
        driver, recorder = rig
        assert driver.pipeline.pointer.as_tuple() == (0.0, 0.0)
        target = warm_up_cursor(driver, np.random.default_rng(1))
        assert driver.pipeline.pointer.distance_to(target) < 1.0
        assert driver.pipeline.pointer.x > 100

    def test_defeats_origin_detector(self, rig):
        """The Appendix F point: warm up, then interact -> no origin tell."""
        driver, recorder = rig
        detector = OriginStartDetector()
        # Without warm-up, the first movement starts at the origin.
        driver.find_element_by_id("submit")  # no interaction yet
        from repro.core.hlisa_action_chains import HLISA_ActionChains

        chain = HLISA_ActionChains(driver, seed=2)
        chain.move_to(400, 300)
        chain.perform()
        assert detector.observe(recorder).is_bot
        # A fresh session with warm-up before "page load" passes.
        driver2 = make_browser_driver()
        warm_up_cursor(driver2, np.random.default_rng(3))
        recorder2 = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver2.window)
        chain2 = HLISA_ActionChains(driver2, seed=2)
        chain2.move_to(400, 300)
        chain2.perform()
        assert not detector.observe(recorder2).is_bot

    def test_origin_detector_ignores_empty_recordings(self):
        assert not OriginStartDetector().observe(EventRecorder()).is_bot


class TestSpontaneousMovements:
    def test_wanders_with_probability_one(self, rig):
        driver, recorder = rig
        warm_up_cursor(driver, np.random.default_rng(1))
        before = driver.pipeline.pointer
        wander = SpontaneousMovements(driver, probability=1.0, seed=4)
        assert wander.maybe_wander()
        assert driver.pipeline.pointer.distance_to(before) > 1.0

    def test_never_wanders_with_probability_zero(self, rig):
        driver, _ = rig
        wander = SpontaneousMovements(driver, probability=0.0, seed=4)
        assert not wander.maybe_wander()

    def test_stays_in_viewport(self, rig):
        driver, _ = rig
        wander = SpontaneousMovements(driver, probability=1.0, seed=5)
        for _ in range(20):
            wander.maybe_wander()
            p = driver.pipeline.pointer
            assert 0 <= p.x <= driver.window.viewport_width
            assert 0 <= p.y <= driver.window.viewport_height


class TestMisclick:
    def test_misclick_then_correct(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        misclick_then_correct(driver, element, np.random.default_rng(6))
        clicks = recorder.clicks()
        assert len(clicks) == 2
        box = element.dom_element.box
        first, second = clicks
        from repro.geometry import Point

        first_page = driver.window.client_to_page(Point(*first.position))
        second_page = driver.window.client_to_page(Point(*second.position))
        assert not box.contains(first_page)  # the miss
        assert box.contains(second_page)  # the correction

    def test_correction_comes_after_pause(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        misclick_then_correct(driver, element, np.random.default_rng(7))
        clicks = recorder.clicks()
        assert clicks[1].down.timestamp - clicks[0].up.timestamp > 200.0


class TestIdleSelection:
    def test_drag_select_then_click(self, rig):
        driver, recorder = rig
        warm_up_cursor(driver, np.random.default_rng(8))
        recorder.clear()
        idle_select_deselect(driver, np.random.default_rng(9))
        downs = recorder.of_type("mousedown")
        ups = recorder.of_type("mouseup")
        assert len(downs) == 2 and len(ups) == 2
        # The selection drag moved the cursor while the button was down.
        moves_during_drag = [
            e
            for e in recorder.of_type("mousemove")
            if downs[0].timestamp < e.timestamp < ups[0].timestamp
        ]
        assert len(moves_during_drag) >= 3


class TestTypoGenerator:
    def test_replay_recovers_text(self):
        generator = TypoGenerator(error_rate=0.3, seed=1)
        text = "the quick brown fox jumps over the lazy dog"
        sequence = generator.keystrokes(text)
        assert TypoGenerator.replay(sequence) == text

    def test_errors_actually_occur(self):
        generator = TypoGenerator(error_rate=0.3, seed=2)
        sequence = generator.keystrokes("abcdefghij" * 5)
        assert generator.error_count(sequence) > 0
        assert BACKSPACE in sequence

    def test_zero_error_rate_is_clean(self):
        generator = TypoGenerator(error_rate=0.0, seed=3)
        text = "clean typing"
        assert generator.keystrokes(text) == list(text)

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            TypoGenerator(error_rate=1.5)

    def test_wrong_key_is_qwerty_neighbour(self):
        from repro.behaviors.typing_errors import QWERTY_NEIGHBOURS

        generator = TypoGenerator(seed=4)
        for char in "qwertyasdf":
            wrong = generator._wrong_key_for(char)
            assert wrong in QWERTY_NEIGHBOURS[char]

    def test_case_preserved_in_errors(self):
        generator = TypoGenerator(seed=5)
        wrong = generator._wrong_key_for("A")
        assert wrong.isupper()

    def test_typed_through_pipeline_yields_text(self):
        """End to end: replay the sequence through the browser."""
        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        driver.window.document.set_focus(area.dom_element)
        generator = TypoGenerator(error_rate=0.2, seed=6)
        text = "hello wonderful world"
        for token in generator.keystrokes(text):
            driver.pipeline.key_down(token)
            driver.window.clock.advance(40)
            driver.pipeline.key_up(token)
            driver.window.clock.advance(60)
        assert area.get_attribute("value") == text
