"""Session replay: the statistical attack and its cross-session answer.

A replay only makes sense against the page it was recorded on (the
coordinates are absolute), so recording and replay share one static
form page -- exactly the setting of the credential-stuffing attacks the
paper's related work describes.
"""

import pytest

from repro.detection import DetectorBattery, DetectionLevel
from repro.detection.replay import (
    CrossSessionReplayDetector,
    signature_similarity,
    timing_signature,
)
from repro.experiment import BrowsingScenario, HumanAgent, Session
from repro.experiment.replay import (
    ReplayAgent,
    deserialize_recording,
    serialize_recording,
)
from repro.geometry import Box
from repro.humans.profile import HumanProfile


def build_form_page(session: Session):
    """The static page both the human and the replay visit."""
    document = session.document
    elements = [
        document.create_element("a", Box(90, 60, 160, 26), id="nav", text="Home"),
        document.create_element("button", Box(1050, 120, 140, 44), id="search"),
        document.create_element("button", Box(540, 620, 160, 48), id="submit"),
        document.create_element("input", Box(420, 300, 420, 36), id="email"),
    ]
    return elements


def record_human_visit(seed=77):
    """A human fills the form: varied-distance clicks, typing, a scroll."""
    session = Session(automated=False, page_height=4000)
    elements = build_form_page(session)
    agent = HumanAgent(HumanProfile(seed=seed))
    for _ in range(5):
        for element in elements[:3]:
            agent.click_element(session, element)
            session.clock.advance(350.0)
    agent.type_text(session, elements[3], "visitor@example.org")
    agent.scroll_by(session, 1200.0)
    return session.recorder


def replay_visit(recording):
    session = Session(automated=True, page_height=4000)
    build_form_page(session)
    ReplayAgent(recording).run(session)
    return session.recorder


@pytest.fixture(scope="module")
def human_recording():
    return record_human_visit()


class TestSerialisation:
    def test_round_trip_preserves_events(self, human_recording):
        payload = serialize_recording(human_recording)
        restored = deserialize_recording(payload)
        assert len(restored.events) == len(human_recording.events)
        for original, loaded in zip(human_recording.events, restored.events):
            assert loaded.type == original.type
            assert loaded.timestamp == original.timestamp
            assert loaded.client_x == original.client_x
            assert loaded.key == original.key

    def test_target_boxes_survive(self, human_recording):
        restored = deserialize_recording(serialize_recording(human_recording))
        originals = [e.target_box for e in human_recording.events if e.target_box]
        loadeds = [e.target_box for e in restored.events if e.target_box]
        assert len(originals) == len(loadeds)
        assert loadeds[0].width == originals[0].width

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            deserialize_recording('{"format": "something-else", "events": []}')


class TestReplayAgent:
    def test_requires_input_events(self):
        from repro.events.recorder import EventRecorder

        with pytest.raises(ValueError):
            ReplayAgent(EventRecorder())

    def test_replay_reproduces_timing(self, human_recording):
        replayed = replay_visit(human_recording)
        assert (
            signature_similarity(
                timing_signature(human_recording), timing_signature(replayed)
            )
            > 0.95
        )

    def test_replay_reproduces_typed_text(self, human_recording):
        session = Session(automated=True, page_height=4000)
        elements = build_form_page(session)
        ReplayAgent(human_recording).run(session)
        assert elements[3].value == "visitor@example.org"

    def test_replay_passes_within_session_batteries(self, human_recording):
        """The statistical attack: recorded human data beats every
        within-session detector, levels 1-3 included."""
        replayed = replay_visit(human_recording)
        report = DetectorBattery(DetectionLevel.CONSISTENCY).evaluate(replayed)
        assert not report.is_bot, report.triggered_names()


class TestCrossSessionDetection:
    def test_first_visit_passes_then_repeats_flagged(self, human_recording):
        detector = CrossSessionReplayDetector()
        assert not detector.observe(replay_visit(human_recording)).is_bot
        verdict = detector.observe(replay_visit(human_recording))
        assert verdict.is_bot
        assert "previous visit" in verdict.reasons[0]

    def test_fresh_human_sessions_never_flagged(self):
        detector = CrossSessionReplayDetector()
        for seed in (301, 302, 303):
            assert not detector.observe(record_human_visit(seed)).is_bot
        assert detector.sessions_seen == 3

    def test_human_then_own_replay_flagged(self, human_recording):
        """Even the original human's visit 'protects' against its
        replay: the second occurrence of the same timing is the tell."""
        detector = CrossSessionReplayDetector()
        assert not detector.observe(human_recording).is_bot
        assert detector.observe(replay_visit(human_recording)).is_bot

    def test_short_sessions_skipped(self):
        from repro.events.recorder import EventRecorder

        detector = CrossSessionReplayDetector()
        assert not detector.observe(EventRecorder()).is_bot
        assert detector.sessions_seen == 0

    def test_signature_similarity_bounds(self):
        import numpy as np

        a = np.arange(50, dtype=float)
        assert signature_similarity(a, a) == 1.0
        assert signature_similarity(a, a + 100.0) == 0.0
        assert signature_similarity(a[:5], a[:5]) == 0.0  # too short
