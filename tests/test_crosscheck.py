"""Cross-layer (fingerprint x interaction) consistency detectors."""

import pytest

from repro.browser.input_pipeline import InputPipeline
from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.crosscheck import (
    SmoothScrollMismatchDetector,
    TouchClaimDetector,
    cross_check,
)
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import COVERING_SET_EVENTS


def make_rig(max_touch_points=0, smooth=False, page_height=6000.0):
    profile = NavigatorProfile(webdriver=True, max_touch_points=max_touch_points)
    window = Window(Document(1366, page_height), profile=profile, smooth_scroll=smooth)
    pipeline = InputPipeline(window)
    recorder = EventRecorder(COVERING_SET_EVENTS).attach(window)
    return window, pipeline, recorder


def mouse_session(pipeline, window, moves=50):
    for i in range(moves):
        pipeline.move_mouse_to(10 + i * 5.0, 100.0, force_event=True)
        window.clock.advance(16)
    pipeline.mouse_down()
    window.clock.advance(60)
    pipeline.mouse_up()


class TestTouchClaim:
    def test_mobile_profile_with_mouse_only_flagged(self):
        window, pipeline, recorder = make_rig(max_touch_points=5)
        mouse_session(pipeline, window)
        assert TouchClaimDetector(window).observe(recorder).is_bot

    def test_desktop_profile_passes(self):
        window, pipeline, recorder = make_rig(max_touch_points=0)
        mouse_session(pipeline, window)
        assert not TouchClaimDetector(window).observe(recorder).is_bot

    def test_mobile_with_actual_touch_passes(self):
        window, pipeline, recorder = make_rig(max_touch_points=5)
        mouse_session(pipeline, window)
        pipeline.touch_start(200, 300)
        window.clock.advance(90)
        pipeline.touch_end()
        assert not TouchClaimDetector(window).observe(recorder).is_bot

    def test_short_sessions_yield_no_verdict(self):
        window, pipeline, recorder = make_rig(max_touch_points=5)
        mouse_session(pipeline, window, moves=5)
        assert not TouchClaimDetector(window).observe(recorder).is_bot


class TestSmoothScrollMismatch:
    def _tick_scroll(self, window, ticks=20):
        for _ in range(ticks):
            window.scroll_by(0, 57.0)  # scripted jump, full tick at once
            window.clock.advance(100)

    def test_tick_jumps_on_smooth_profile_flagged(self):
        window, pipeline, recorder = make_rig(smooth=True)
        self._tick_scroll(window)
        assert SmoothScrollMismatchDetector(window).observe(recorder).is_bot

    def test_wheel_on_smooth_profile_passes(self):
        window, pipeline, recorder = make_rig(smooth=True)
        for _ in range(20):
            pipeline.wheel()
            window.clock.advance(100)
        assert not SmoothScrollMismatchDetector(window).observe(recorder).is_bot

    def test_non_smooth_profile_never_flagged(self):
        window, pipeline, recorder = make_rig(smooth=False)
        self._tick_scroll(window)
        assert not SmoothScrollMismatchDetector(window).observe(recorder).is_bot


class TestCrossCheckBattery:
    def test_report_aggregates(self):
        window, pipeline, recorder = make_rig(max_touch_points=5)
        mouse_session(pipeline, window)
        report = cross_check(window, recorder)
        assert report.is_bot
        assert any(v.detector == "touch-claim-mismatch" for v in report.verdicts)

    def test_clean_session_passes(self):
        window, pipeline, recorder = make_rig()
        mouse_session(pipeline, window)
        assert not cross_check(window, recorder).is_bot
