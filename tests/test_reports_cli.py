"""The report generators and the command-line entry point."""

import pytest

from repro.__main__ import main
from repro.reports import (
    REPORTS,
    figure1_report,
    figure2_report,
    table1_report,
    table3_report,
)


class TestReports:
    def test_table1_contains_matrix(self):
        report = table1_report()
        assert "Unnamed window.navigator functions" in report
        assert "x  x  .  ." in report

    def test_table3_lists_api(self):
        report = table3_report()
        for name in ("move_to_element_outside_viewport", "scroll_by", "send_keys"):
            assert name in report

    def test_figure1_has_all_agents(self):
        report = figure1_report()
        for agent in ("selenium", "human", "naive", "hlisa"):
            assert agent in report

    def test_figure2_has_all_agents(self):
        report = figure2_report(clicks=25)
        for agent in ("selenium", "human", "naive", "hlisa"):
            assert agent in report

    def test_registry_complete(self):
        for name in ("table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4"):
            assert name in REPORTS


class TestCLI:
    def test_table1_exit_code(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "trajectory signatures" in capsys.readouterr().out

    def test_invalid_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
