"""Interaction detectors: each level catches its prey, spares the human."""

import pytest

from repro.detection import DetectorBattery, DetectionLevel
from repro.detection.artificial import (
    InhumanTypingSpeedDetector,
    MissingModifierDetector,
    NoMovementClickDetector,
    PerfectCenterClickDetector,
    StraightLineDetector,
    SuperhumanSpeedDetector,
    TeleportScrollDetector,
    ZeroDwellClickDetector,
    ZeroKeyDwellDetector,
)
from repro.detection.consistency import (
    DistanceSpeedCouplingDetector,
    SpeedAccuracyCouplingDetector,
)
from repro.detection.deviation import (
    ClickScatterDetector,
    MetronomeScrollDetector,
    PauselessTypingDetector,
    RhythmlessTypingDetector,
    TrajectoryShapeDetector,
    UniformSpeedDetector,
)
from repro.detection.profile_match import EnrolledProfileDetector
from repro.experiment import (
    BrowsingScenario,
    HLISAAgent,
    HumanAgent,
    MovingClickTask,
    NaiveAgent,
    PointingTask,
    ScrollTask,
    SeleniumAgent,
    TypingTask,
)
from repro.humans.profile import SUBJECT_POOL, HumanProfile


# Recordings are expensive enough to share per test module.
@pytest.fixture(scope="module")
def recordings():
    result = {}
    for name, agent in (
        ("selenium", SeleniumAgent()),
        ("naive", NaiveAgent()),
        ("hlisa", HLISAAgent()),
        ("human", HumanAgent()),
    ):
        result[name] = BrowsingScenario(clicks=40).run(agent).recorder
    return result


class TestLevel1:
    def test_superhuman_speed_catches_selenium(self, recordings):
        assert SuperhumanSpeedDetector().observe(recordings["selenium"]).is_bot

    def test_straight_line_catches_selenium(self, recordings):
        assert StraightLineDetector().observe(recordings["selenium"]).is_bot

    def test_center_clicks_catch_selenium(self, recordings):
        assert PerfectCenterClickDetector().observe(recordings["selenium"]).is_bot

    def test_zero_dwell_catches_selenium(self, recordings):
        assert ZeroDwellClickDetector().observe(recordings["selenium"]).is_bot

    def test_typing_speed_catches_selenium(self, recordings):
        assert InhumanTypingSpeedDetector().observe(recordings["selenium"]).is_bot

    def test_key_dwell_catches_selenium(self, recordings):
        assert ZeroKeyDwellDetector().observe(recordings["selenium"]).is_bot

    def test_modifiers_catch_selenium(self, recordings):
        assert MissingModifierDetector().observe(recordings["selenium"]).is_bot

    def test_teleport_scroll_catches_selenium(self, recordings):
        assert TeleportScrollDetector().observe(recordings["selenium"]).is_bot

    @pytest.mark.parametrize(
        "detector_cls",
        [
            SuperhumanSpeedDetector,
            StraightLineDetector,
            PerfectCenterClickDetector,
            ZeroDwellClickDetector,
            InhumanTypingSpeedDetector,
            ZeroKeyDwellDetector,
            MissingModifierDetector,
            TeleportScrollDetector,
            NoMovementClickDetector,
        ],
    )
    @pytest.mark.parametrize("agent", ["naive", "hlisa", "human"])
    def test_level1_spares_everyone_else(self, recordings, detector_cls, agent):
        verdict = detector_cls().observe(recordings[agent])
        assert not verdict.is_bot, f"{detector_cls.__name__} flagged {agent}: {verdict.reasons}"

    def test_no_movement_click_catches_webelement_click(self):
        """WebElement.click teleports the cursor -- no approach at all."""
        from repro.events.recorder import EventRecorder
        from repro.events.taxonomy import ALL_INTERACTION_EVENTS
        from repro.webdriver.driver import make_browser_driver

        driver = make_browser_driver()
        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        driver.find_element_by_id("submit").click()
        assert NoMovementClickDetector().observe(recorder).is_bot


class TestLevel2:
    def test_click_scatter_catches_naive(self, recordings):
        assert ClickScatterDetector().observe(recordings["naive"]).is_bot

    def test_trajectory_shape_catches_naive(self, recordings):
        assert TrajectoryShapeDetector().observe(recordings["naive"]).is_bot

    def test_rhythmless_typing_catches_naive(self, recordings):
        assert RhythmlessTypingDetector().observe(recordings["naive"]).is_bot

    def test_pauseless_typing_catches_naive(self, recordings):
        assert PauselessTypingDetector().observe(recordings["naive"]).is_bot

    def test_metronome_scroll_catches_naive(self, recordings):
        assert MetronomeScrollDetector().observe(recordings["naive"]).is_bot

    def test_uniform_speed_catches_naive(self, recordings):
        assert UniformSpeedDetector().observe(recordings["naive"]).is_bot

    @pytest.mark.parametrize(
        "detector_cls",
        [
            ClickScatterDetector,
            TrajectoryShapeDetector,
            RhythmlessTypingDetector,
            PauselessTypingDetector,
            MetronomeScrollDetector,
            UniformSpeedDetector,
        ],
    )
    @pytest.mark.parametrize("agent", ["hlisa", "human"])
    def test_level2_spares_hlisa_and_human(self, recordings, detector_cls, agent):
        verdict = detector_cls().observe(recordings[agent])
        assert not verdict.is_bot, f"{detector_cls.__name__} flagged {agent}: {verdict.reasons}"


class TestLevel3:
    def test_distance_speed_coupling_catches_hlisa(self, recordings):
        assert DistanceSpeedCouplingDetector().observe(recordings["hlisa"]).is_bot

    def test_speed_accuracy_coupling_catches_hlisa(self, recordings):
        assert SpeedAccuracyCouplingDetector().observe(recordings["hlisa"]).is_bot

    @pytest.mark.parametrize(
        "detector_cls", [DistanceSpeedCouplingDetector, SpeedAccuracyCouplingDetector]
    )
    def test_level3_spares_human(self, recordings, detector_cls):
        verdict = detector_cls().observe(recordings["human"])
        assert not verdict.is_bot, verdict.reasons

    def test_insufficient_data_yields_human(self):
        """Consistency detectors need many samples; short sessions pass."""
        recorder = MovingClickTask(clicks=5).run(HLISAAgent()).recorder
        assert not DistanceSpeedCouplingDetector().observe(recorder).is_bot


class TestLevel4:
    @pytest.fixture(scope="class")
    def enrolled(self):
        detector = EnrolledProfileDetector(z_threshold=2.0)
        subject = HumanProfile()
        recordings = [
            BrowsingScenario(clicks=40).run(HumanAgent(subject.with_seed(100 + i))).recorder
            for i in range(3)
        ]
        detector.enroll(recordings)
        return detector

    def test_same_user_passes(self, enrolled):
        probe = BrowsingScenario(clicks=40).run(
            HumanAgent(HumanProfile().with_seed(777))
        ).recorder
        assert not enrolled.observe(probe).is_bot

    def test_different_user_flagged(self, enrolled):
        """A *different human* is not the enrolled individual -- the level
        the paper notes may collide with privacy regulation."""
        other = SUBJECT_POOL["subject-b"]
        probe = BrowsingScenario(clicks=40).run(HumanAgent(other)).recorder
        assert enrolled.observe(probe).is_bot

    def test_generic_simulation_flagged(self, enrolled):
        from repro.armsrace.simulators import ConsistentSimulatorAgent

        probe = BrowsingScenario(clicks=40).run(ConsistentSimulatorAgent()).recorder
        assert enrolled.observe(probe).is_bot

    def test_unenrolled_observe_raises(self):
        with pytest.raises(RuntimeError):
            EnrolledProfileDetector().z_scores(None)

    def test_enroll_requires_two_recordings(self):
        with pytest.raises(ValueError):
            EnrolledProfileDetector().enroll([])


class TestBattery:
    def test_cumulative_detector_counts(self):
        b1 = DetectorBattery(DetectionLevel.ARTIFICIAL)
        b2 = DetectorBattery(DetectionLevel.DEVIATION)
        b3 = DetectorBattery(DetectionLevel.CONSISTENCY)
        assert len(b1.detectors) < len(b2.detectors) < len(b3.detectors)

    def test_report_lists_triggers(self, recordings):
        report = DetectorBattery(DetectionLevel.ARTIFICIAL).evaluate(
            recordings["selenium"]
        )
        assert report.is_bot
        assert "straight-line" in report.triggered_names()

    def test_human_passes_full_battery(self, recordings):
        report = DetectorBattery(DetectionLevel.CONSISTENCY).evaluate(
            recordings["human"]
        )
        assert not report.is_bot, report.triggered_names()

    def test_profile_battery_requires_enrolment(self):
        with pytest.raises(ValueError):
            DetectorBattery(
                DetectionLevel.PROFILE, profile_detector=EnrolledProfileDetector()
            )
