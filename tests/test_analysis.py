"""Metric extraction: trajectories, clicks, typing, scrolling."""

import math

import numpy as np
import pytest

from repro.analysis import click_metrics, scroll_metrics, trajectory_metrics, typing_metrics
from repro.analysis.trajectory import per_movement_metrics, split_movements
from repro.events.event import Event
from repro.events.recorder import ClickRecord, KeyStroke
from repro.geometry import Box


def straight_path(n=30, speed_px_per_sample=10.0, dt=8.0):
    return [(i * dt, i * speed_px_per_sample, 100.0) for i in range(n)]


def key_stroke(key, t_down, dwell, shift=False):
    return KeyStroke(
        down=Event("keydown", timestamp=t_down, key=key, shift_key=shift),
        up=Event("keyup", timestamp=t_down + dwell, key=key),
    )


class TestTrajectoryMetrics:
    def test_straight_line_measured_straight(self):
        m = trajectory_metrics(straight_path())
        assert m.straightness == pytest.approx(1.0)
        assert m.is_straight
        assert m.speed_cv < 0.01
        assert m.is_uniform_speed
        assert m.jitter_rms_px < 0.1

    def test_speed_computation(self):
        m = trajectory_metrics(straight_path(speed_px_per_sample=8.0, dt=8.0))
        assert m.mean_speed_px_s == pytest.approx(1000.0)

    def test_jitter_detected(self):
        rng = np.random.default_rng(0)
        path = [
            (i * 8.0, i * 10.0 + rng.normal(0, 2.0), 100.0 + rng.normal(0, 2.0))
            for i in range(60)
        ]
        m = trajectory_metrics(path)
        assert m.jitter_rms_px > 1.0

    def test_smooth_curve_has_no_jitter(self):
        path = [
            (i * 8.0, i * 10.0, 100.0 + 50 * math.sin(i / 60 * math.pi))
            for i in range(60)
        ]
        m = trajectory_metrics(path)
        assert m.jitter_rms_px < 0.2
        assert m.straightness < 0.99

    def test_bell_profile_detected(self):
        # Minimum-jerk positions: slow ends, fast middle.
        n = 60
        s = [10 * (i / (n - 1)) ** 3 - 15 * (i / (n - 1)) ** 4 + 6 * (i / (n - 1)) ** 5 for i in range(n)]
        path = [(i * 8.0, 800 * s[i], 100.0) for i in range(n)]
        m = trajectory_metrics(path)
        assert m.edge_to_middle_speed_ratio < 0.5
        assert m.has_bell_speed_profile

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            trajectory_metrics([(0.0, 1.0, 1.0)])

    def test_split_movements_on_gaps(self):
        path = straight_path(20)
        resumed = [(t + 1000.0, x + 500, y) for t, x, y in straight_path(20)]
        movements = split_movements(path + resumed)
        assert len(movements) == 2

    def test_split_drops_twitches(self):
        movements = split_movements([(0.0, 1, 1), (5.0, 2, 2)], min_samples=4)
        assert movements == []

    def test_per_movement_metrics(self):
        path = straight_path(20)
        resumed = [(t + 1000.0, x, y + 300) for t, x, y in straight_path(20)]
        metrics = per_movement_metrics(path + resumed)
        assert len(metrics) == 2
        assert all(m.is_straight for m in metrics)


class TestClickMetrics:
    BOX = Box(0, 0, 100, 100)

    def test_all_center_clicks(self):
        positions = [(50.0, 50.0)] * 10
        m = click_metrics(positions, [self.BOX] * 10)
        assert m.exact_center_rate == 1.0
        assert m.mean_radial_offset == pytest.approx(0.0)

    def test_corner_rate(self):
        positions = [(95.0, 95.0), (5.0, 5.0), (50.0, 50.0), (50.0, 60.0)]
        m = click_metrics(positions, [self.BOX] * 4)
        assert m.corner_rate == 0.5

    def test_outside_rate(self):
        positions = [(150.0, 50.0), (50.0, 50.0)]
        m = click_metrics(positions, [self.BOX] * 2)
        assert m.outside_rate == 0.5

    def test_normalisation_uses_each_box(self):
        positions = [(10.0, 10.0), (100.0, 100.0)]
        boxes = [Box(0, 0, 20, 20), Box(80, 80, 40, 40)]
        m = click_metrics(positions, boxes)
        assert m.exact_center_rate == 1.0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            click_metrics([(1.0, 1.0)], [])

    def test_gaussian_cloud_ks_low(self):
        rng = np.random.default_rng(0)
        positions = [
            (50 + rng.normal(0, 10), 50 + rng.normal(0, 10)) for _ in range(200)
        ]
        m = click_metrics(positions, [self.BOX] * 200)
        assert m.normal_ks_x < 0.08
        assert m.uniform_p_x < 0.05

    def test_uniform_cloud_flagged(self):
        rng = np.random.default_rng(1)
        positions = [
            (rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(300)
        ]
        m = click_metrics(positions, [self.BOX] * 300)
        assert m.uniform_p_x > 0.01
        assert m.corner_rate > 0.0


class TestTypingMetrics:
    def test_basic_stats(self):
        strokes = [
            key_stroke("a", 0, 90),
            key_stroke("b", 200, 110),
            key_stroke("c", 420, 95),
        ]
        m = typing_metrics(strokes)
        assert m.n_strokes == 3
        assert m.dwell_mean_ms == pytest.approx((90 + 110 + 95) / 3)
        assert m.rollover_count == 0

    def test_rollover_counted(self):
        strokes = [key_stroke("a", 0, 150), key_stroke("b", 100, 80)]
        m = typing_metrics(strokes)
        assert m.rollover_count == 1

    def test_cpm(self):
        strokes = [key_stroke(c, i * 100.0, 50) for i, c in enumerate("abcdefghijk")]
        m = typing_metrics(strokes)
        span_minutes = (10 * 100.0 + 50) / 60000.0
        assert m.chars_per_minute == pytest.approx(11 / span_minutes)

    def test_selenium_signatures(self):
        strokes = [key_stroke(c, i * 4.5, 0.0) for i, c in enumerate("abcdef" * 3)]
        m = typing_metrics(strokes)
        assert m.has_negligible_dwell
        assert m.is_inhumanly_fast

    def test_shift_accounting_via_flag(self):
        strokes = [key_stroke("A", 0, 90, shift=True), key_stroke("B", 300, 90)]
        m = typing_metrics(strokes)
        assert m.shifted_with_modifier == 1
        assert m.shifted_without_modifier == 1

    def test_shift_accounting_via_interval(self):
        strokes = [
            key_stroke("Shift", 0, 200),
            key_stroke("A", 50, 80),
        ]
        m = typing_metrics(strokes)
        assert m.shifted_with_modifier == 1
        assert m.shifted_without_modifier == 0

    def test_modifier_only_rejected(self):
        with pytest.raises(ValueError):
            typing_metrics([key_stroke("Shift", 0, 100)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            typing_metrics([])


class TestScrollMetrics:
    def _scroll(self, t, y):
        return Event("scroll", timestamp=t, page_y=y)

    def _wheel(self, t, dy=57.0):
        return Event("wheel", timestamp=t, delta_y=dy)

    def test_wheelless_detection(self):
        m = scroll_metrics([self._scroll(0, 5000)], [])
        assert m.wheelless
        assert m.has_teleport_scrolls
        assert m.max_single_scroll_px == 5000

    def test_tick_scrolling(self):
        scrolls = [self._scroll(i * 100.0, (i + 1) * 57.0) for i in range(20)]
        wheels = [self._wheel(i * 100.0) for i in range(20)]
        m = scroll_metrics(scrolls, wheels)
        assert not m.wheelless
        assert m.wheel_tick_px == 57.0
        assert m.median_scroll_step_px == 57.0
        assert not m.has_teleport_scrolls

    def test_sweep_structure(self):
        times = []
        t = 0.0
        for i in range(30):
            t += 400.0 if i % 7 == 6 else 90.0
            times.append(t)
        wheels = [self._wheel(t) for t in times]
        scrolls = [self._scroll(t, (i + 1) * 57.0) for i, t in enumerate(times)]
        m = scroll_metrics(scrolls, wheels)
        assert m.has_sweep_structure

    def test_metronome_has_no_sweeps(self):
        wheels = [self._wheel(i * 100.0) for i in range(30)]
        scrolls = [self._scroll(i * 100.0, (i + 1) * 57.0) for i in range(30)]
        m = scroll_metrics(scrolls, wheels)
        assert not m.has_sweep_structure

    def test_cadence_from_scroll_events_when_wheelless(self):
        """HLISA's scrollBy ticks still expose their cadence."""
        times = []
        t = 0.0
        for i in range(30):
            t += 400.0 if i % 7 == 6 else 90.0
            times.append(t)
        scrolls = [self._scroll(t, (i + 1) * 57.0) for i, t in enumerate(times)]
        m = scroll_metrics(scrolls, [])
        assert m.wheelless
        assert m.has_sweep_structure
