"""The operating-point harness."""

import pytest

from repro.analysis.detector_eval import (
    OperatingPoints,
    default_agent_factories,
    evaluate_operating_points,
)
from repro.detection.base import DetectionLevel
from repro.experiment.tasks import BrowsingScenario


@pytest.fixture(scope="module")
def points():
    return evaluate_operating_points(
        DetectionLevel.CONSISTENCY,
        runs_per_agent=3,
        scenario=BrowsingScenario(clicks=35),
    )


class TestOperatingPoints:
    def test_human_false_positive_rate_zero(self, points):
        """'detectors must not be too strict or risk barring human
        visitors entry' -- the whole battery must have 0 FPR."""
        assert points.false_positive_rate() == 0.0

    def test_all_bots_caught_overall(self, points):
        for agent in ("selenium", "naive", "hlisa"):
            assert points.detection_rate(agent) == 1.0, agent

    def test_selenium_caught_by_many_detectors(self, points):
        flagged = [
            name for name, rate in points.rates["selenium"].items() if rate == 1.0
        ]
        assert len(flagged) >= 8

    def test_hlisa_caught_only_by_consistency(self, points):
        flagged = {
            name for name, rate in points.rates["hlisa"].items() if rate > 0
        }
        assert flagged <= {"distance-speed-coupling", "speed-accuracy-coupling"}
        assert flagged  # at least one fires

    def test_format_table(self, points):
        rendering = points.format_table()
        assert "ANY" in rendering
        assert "selenium" in rendering

    def test_default_factories_cover_standard_agents(self):
        assert set(default_agent_factories()) == {"selenium", "naive", "hlisa", "human"}
