"""The input pipeline: OS input -> DOM events with Firefox quirks."""

import pytest

from repro.browser.input_pipeline import (
    DEFAULT_DOUBLE_CLICK_INTERVAL_MS,
    InputPipeline,
    LEFT_BUTTON,
    RIGHT_BUTTON,
    SELENIUM_DOUBLE_CLICK_INTERVAL_MS,
    WHEEL_TICK_PX,
    key_code_for,
)
from repro.browser.window import Window
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box


def make_rig(page_height=768.0, double_click_ms=DEFAULT_DOUBLE_CLICK_INTERVAL_MS):
    document = Document(1366, page_height)
    window = Window(document)
    pipeline = InputPipeline(window, double_click_interval_ms=double_click_ms)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(window)
    return document, window, pipeline, recorder


class TestMouseMovement:
    def test_pointer_starts_at_origin(self):
        """Appendix F: mouse movement starts at (0, 0)."""
        _, _, pipeline, _ = make_rig()
        assert pipeline.pointer.as_tuple() == (0.0, 0.0)

    def test_mousemove_dispatched(self):
        _, window, pipeline, recorder = make_rig()
        window.clock.advance(10)
        pipeline.move_mouse_to(100, 50)
        moves = recorder.of_type("mousemove")
        assert len(moves) == 1
        assert moves[0].client_point == (100.0, 50.0)

    def test_coalescing_rate_limits_mousemove(self):
        _, window, pipeline, recorder = make_rig()
        for i in range(10):
            pipeline.move_mouse_to(i * 5.0, 0.0)
            window.clock.advance(1.0)  # below the 5 ms coalescing window
        assert len(recorder.of_type("mousemove")) < 10

    def test_force_event_bypasses_coalescing(self):
        _, window, pipeline, recorder = make_rig()
        pipeline.move_mouse_to(10, 0)
        pipeline.move_mouse_to(20, 0, force_event=True)
        assert len(recorder.of_type("mousemove")) == 2

    def test_coordinates_are_integers(self):
        _, window, pipeline, recorder = make_rig()
        pipeline.move_mouse_to(10.6, 20.4)
        event = recorder.of_type("mousemove")[0]
        assert event.client_x == 11.0
        assert event.client_y == 20.0

    def test_hover_transitions(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50), id="b")
        pipeline.move_mouse_to(10, 10)
        window.clock.advance(20)
        pipeline.move_mouse_to(120, 120)
        types = [e.type for e in recorder.events]
        assert "mouseover" in types and "mouseout" in types
        assert pipeline.hovered_element.id == "b"


class TestClicks:
    def test_click_synthesised_on_same_element(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50), id="b")
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down()
        window.clock.advance(80)
        pipeline.mouse_up()
        types = [e.type for e in recorder.events]
        assert types.count("mousedown") == 1
        assert types.count("mouseup") == 1
        assert types.count("click") == 1

    def test_no_click_when_released_elsewhere(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50))
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down()
        pipeline.move_mouse_to(500, 500, force_event=True)
        pipeline.mouse_up()
        assert [e.type for e in recorder.of_type("click")] == []

    def test_dblclick_within_interval(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50))
        pipeline.move_mouse_to(120, 120, force_event=True)
        for _ in range(2):
            pipeline.mouse_down()
            window.clock.advance(40)
            pipeline.mouse_up()
            window.clock.advance(150)
        assert len(recorder.of_type("dblclick")) == 1

    def test_no_dblclick_beyond_default_interval(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50))
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down(); pipeline.mouse_up()
        window.clock.advance(DEFAULT_DOUBLE_CLICK_INTERVAL_MS + 50)
        pipeline.mouse_down(); pipeline.mouse_up()
        assert recorder.of_type("dblclick") == []

    def test_selenium_environment_accepts_550ms_gap(self):
        """Appendix D: under Selenium the max interval was 600 ms."""
        document, window, pipeline, recorder = make_rig(
            double_click_ms=SELENIUM_DOUBLE_CLICK_INTERVAL_MS
        )
        document.create_element("button", Box(100, 100, 50, 50))
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down(); pipeline.mouse_up()
        window.clock.advance(550)
        pipeline.mouse_down(); pipeline.mouse_up()
        assert len(recorder.of_type("dblclick")) == 1

    def test_no_dblclick_when_cursor_travelled(self):
        """Desktop environments cancel double clicks beyond a few px."""
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 200, 200))
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down(); pipeline.mouse_up()
        window.clock.advance(100)
        pipeline.move_mouse_to(220, 220, force_event=True)
        pipeline.mouse_down(); pipeline.mouse_up()
        assert recorder.of_type("dblclick") == []

    def test_right_click_fires_contextmenu(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("button", Box(100, 100, 50, 50))
        pipeline.move_mouse_to(120, 120, force_event=True)
        pipeline.mouse_down(RIGHT_BUTTON)
        pipeline.mouse_up(RIGHT_BUTTON)
        assert len(recorder.of_type("contextmenu")) == 1
        assert recorder.of_type("click") == []

    def test_focus_follows_mousedown_on_focusable(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("input", Box(100, 100, 100, 30), id="f")
        pipeline.move_mouse_to(120, 110, force_event=True)
        pipeline.mouse_down()
        assert document.active_element.id == "f"
        assert "focus" in [e.type for e in recorder.events]

    def test_mousedown_elsewhere_blurs(self):
        document, window, pipeline, recorder = make_rig()
        document.create_element("input", Box(100, 100, 100, 30), id="f")
        pipeline.move_mouse_to(120, 110, force_event=True)
        pipeline.mouse_down(); pipeline.mouse_up()
        pipeline.move_mouse_to(600, 600, force_event=True)
        pipeline.mouse_down()
        assert document.active_element is None
        assert "blur" in [e.type for e in recorder.events]


class TestWheelAndScroll:
    def test_wheel_fires_wheel_then_scroll(self):
        _, window, pipeline, recorder = make_rig(page_height=4000)
        pipeline.wheel()
        types = [e.type for e in recorder.events if e.type in ("wheel", "scroll")]
        assert types == ["wheel", "scroll"]
        assert window.scroll_y == WHEEL_TICK_PX

    def test_wheel_tick_is_57px(self):
        _, window, pipeline, recorder = make_rig(page_height=4000)
        pipeline.wheel()
        assert recorder.of_type("wheel")[0].delta_y == 57.0

    def test_wheel_at_page_bottom_no_scroll_event(self):
        _, window, pipeline, recorder = make_rig(page_height=768)
        pipeline.wheel()
        assert recorder.of_type("wheel") != []
        assert recorder.of_type("scroll") == []

    def test_programmatic_scroll_has_no_wheel(self):
        """Selenium's scrolling signature (Section 4.1)."""
        _, window, pipeline, recorder = make_rig(page_height=10000)
        assert pipeline.scroll_programmatic(0, 5000)
        assert recorder.of_type("wheel") == []
        assert len(recorder.of_type("scroll")) == 1
        assert window.scroll_y == 5000

    def test_scroll_clamped_to_page(self):
        _, window, pipeline, _ = make_rig(page_height=1000)
        pipeline.scroll_programmatic(0, 99999)
        assert window.scroll_y == 1000 - window.viewport_height


class TestKeyboard:
    def test_keydown_keypress_keyup_for_printable(self):
        document, window, pipeline, recorder = make_rig()
        field = document.create_element("input", Box(0, 0, 100, 30))
        document.set_focus(field)
        pipeline.key_down("a")
        window.clock.advance(80)
        pipeline.key_up("a")
        assert [e.type for e in recorder.events if e.key == "a"] == [
            "keydown",
            "keypress",
            "keyup",
        ]
        assert field.value == "a"

    def test_capital_without_shift_observable(self):
        """Selenium's signature: 'A' arrives with shift_key False."""
        document, window, pipeline, recorder = make_rig()
        pipeline.key_down("A")
        event = recorder.of_type("keydown")[0]
        assert event.key == "A"
        assert event.shift_key is False

    def test_shift_sets_modifier_flag(self):
        document, window, pipeline, recorder = make_rig()
        pipeline.key_down("Shift")
        pipeline.key_down("A")
        event = [e for e in recorder.of_type("keydown") if e.key == "A"][0]
        assert event.shift_key is True
        pipeline.key_up("Shift")
        pipeline.key_down("b")
        event_b = [e for e in recorder.of_type("keydown") if e.key == "b"][0]
        assert event_b.shift_key is False

    def test_backspace_edits_value(self):
        document, window, pipeline, _ = make_rig()
        field = document.create_element("textarea", Box(0, 0, 100, 30))
        document.set_focus(field)
        for char in "ab":
            pipeline.key_down(char)
            pipeline.key_up(char)
        pipeline.key_down("Backspace")
        pipeline.key_up("Backspace")
        assert field.value == "a"

    def test_pressed_keys_tracks_rollover(self):
        _, _, pipeline, _ = make_rig()
        pipeline.key_down("a")
        pipeline.key_down("b")
        assert pipeline.pressed_keys == frozenset({"a", "b"})
        pipeline.key_up("a")
        assert pipeline.pressed_keys == frozenset({"b"})

    def test_key_codes(self):
        assert key_code_for("a") == "KeyA"
        assert key_code_for("A") == "KeyA"
        assert key_code_for("7") == "Digit7"
        assert key_code_for(" ") == "Space"
        assert key_code_for("Shift") == "ShiftLeft"
        assert key_code_for("Enter") == "Enter"


class TestVisibility:
    def test_visibilitychange_and_window_blur(self):
        document, window, pipeline, recorder = make_rig()
        window.set_visibility("hidden")
        types = [e.type for e in recorder.events]
        assert "visibilitychange" in types
        assert "blur" in types
        assert document.visibility_state == "hidden"

    def test_same_state_is_noop(self):
        document, window, pipeline, recorder = make_rig()
        window.set_visibility("visible")
        assert recorder.events == []

    def test_invalid_state_rejected(self):
        _, window, _, _ = make_rig()
        with pytest.raises(ValueError):
            window.set_visibility("minimised")
