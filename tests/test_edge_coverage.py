"""Assorted edge-case coverage across subsystems."""

import numpy as np
import pytest

from repro.crawl import (
    CrawlResult,
    OpenWPMCrawler,
    SiteConfig,
    evaluate_breakage,
    evaluate_http_errors,
    evaluate_screenshots,
    simulate_visit,
)
from repro.crawl.visit import HTTPResponse, Screenshot
from repro.spoofing import SpoofingExtension


class TestHTTPResponse:
    def test_is_error_boundary(self):
        assert not HTTPResponse("u", 399, True).is_error
        assert HTTPResponse("u", 400, True).is_error
        assert HTTPResponse("u", 503, False).is_error


class TestScreenshot:
    def test_missing_ads_flags(self):
        shot = Screenshot(ads_expected=3, ads_shown=0)
        assert shot.missing_all_ads and not shot.missing_some_ads
        shot = Screenshot(ads_expected=3, ads_shown=1)
        assert shot.missing_some_ads and not shot.missing_all_ads
        shot = Screenshot(ads_expected=0, ads_shown=0)
        assert not shot.missing_all_ads


class TestVisitRecordCounters:
    def test_error_counters(self):
        site = SiteConfig(rank=1, domain="a.example", first_party_error_rate=0.0,
                          third_party_error_rate=0.0)
        record = simulate_visit(
            site, extension=None, visit_index=0, rng=np.random.default_rng(0),
            per_visit_failure=0.0,
        )
        assert record.first_party_errors() == 0
        assert record.third_party_errors() == 0


class TestEmptyCrawlEvaluation:
    def test_empty_crawl_result(self):
        empty = CrawlResult(crawler_name="empty")
        evaluation = evaluate_screenshots(empty)
        assert evaluation.total_sites == 0
        assert evaluation.affected_sites == 0

    def test_http_eval_with_no_shared_sites(self):
        a = CrawlResult(crawler_name="a")
        b = CrawlResult(crawler_name="b")
        evaluation = evaluate_http_errors(a, b)
        assert evaluation.first_party_wilcoxon is None
        assert evaluation.rows() == []

    def test_breakage_on_empty(self):
        report = evaluate_breakage(CrawlResult("a"), CrawlResult("b"))
        assert report.total == 0


class TestCrawlerStatusCounts:
    def test_party_split(self):
        site = SiteConfig(rank=1, domain="b.example")
        crawler = OpenWPMCrawler("x", None, instances=2, seed=3)
        result = crawler.crawl([site])
        first = result.status_code_counts(first_party=True)
        third = result.status_code_counts(first_party=False)
        combined = result.status_code_counts()
        for status in set(first) | set(third):
            assert combined[status] == first.get(status, 0) + third.get(status, 0)


class TestReportsSmoke:
    def test_table4_report_small(self):
        from repro.reports import table4_report

        report = table4_report(click_attempts=30)
        assert "HLISA" in report
        assert "feature counts" in report


class TestTaxonomyDragFamily:
    def test_drag_events_in_document_list(self):
        from repro.events.taxonomy import DOCUMENT_EVENTS

        for name in ("dragstart", "drag", "dragend", "dragenter", "dragleave",
                     "dragover", "drop"):
            assert name in DOCUMENT_EVENTS


class TestNavigatorExtras:
    def test_languages_tuple(self):
        from repro.browser.navigator import NavigatorProfile, make_navigator

        nav = make_navigator(NavigatorProfile(languages=("de-DE", "de", "en")))
        assert nav.get("languages") == ("de-DE", "de", "en")

    def test_property_is_enumerable_method(self):
        from repro.browser.navigator import make_navigator

        nav = make_navigator()
        fn = nav.get("propertyIsEnumerable")
        assert fn.call(nav.proto, "webdriver") is True

    def test_has_own_property_method(self):
        from repro.browser.navigator import make_navigator

        nav = make_navigator()
        fn = nav.get("hasOwnProperty")
        assert fn.call(nav, "webdriver") is False  # lives on the prototype
        assert fn.call(nav.proto, "webdriver") is True


class TestSpoofedCrawlDeterminism:
    def test_same_seed_same_outcome(self):
        site = SiteConfig(rank=1, domain="d.example")
        a = simulate_visit(site, extension=SpoofingExtension(), visit_index=0,
                           rng=np.random.default_rng(5))
        b = simulate_visit(site, extension=SpoofingExtension(), visit_index=0,
                           rng=np.random.default_rng(5))
        assert [r.status for r in a.responses] == [r.status for r in b.responses]
