"""Scrollbar dragging: a continuous, wheel-less, chrome-level scroll
origin (Appendix D)."""

import numpy as np
import pytest

from repro.analysis import scroll_metrics
from repro.detection.artificial import TeleportScrollDetector
from repro.detection.deviation import MetronomeScrollDetector
from repro.experiment import Session
from repro.experiment.agents import HumanAgent
from repro.humans import HumanScrolling
from repro.humans.profile import HumanProfile


def drag_session(distance=2200.0, seed=5):
    session = Session(automated=False, page_height=9000)
    agent = HumanAgent(HumanProfile(seed=seed))
    agent.scroll_by_scrollbar(session, distance)
    return session


class TestDragPlan:
    def test_reaches_target(self):
        scrolling = HumanScrolling(HumanProfile(seed=1))
        plan = scrolling.plan_scrollbar_drag(1500.0, current_scroll_y=100.0)
        assert plan[-1][1] == pytest.approx(1600.0, abs=1.0)

    def test_monotone_ish_progress(self):
        scrolling = HumanScrolling(HumanProfile(seed=2))
        plan = scrolling.plan_scrollbar_drag(2000.0)
        positions = [y for _, y in plan]
        # Tremor allows tiny reversals, but the drag mostly advances.
        advancing = sum(1 for a, b in zip(positions, positions[1:]) if b >= a)
        assert advancing / (len(positions) - 1) > 0.9

    def test_zero_distance_empty(self):
        scrolling = HumanScrolling(HumanProfile(seed=3))
        assert scrolling.plan_scrollbar_drag(0.0) == []

    def test_frame_paced(self):
        scrolling = HumanScrolling(HumanProfile(seed=4))
        plan = scrolling.plan_scrollbar_drag(1200.0)
        assert all(dt == HumanScrolling.DRAG_FRAME_MS for dt, _ in plan)


class TestObservables:
    def test_only_scroll_events(self):
        session = drag_session()
        recorder = session.recorder
        assert recorder.scroll_events()
        assert recorder.wheel_ticks() == []
        assert recorder.of_type("mousedown") == []  # chrome, not content

    def test_continuous_small_steps(self):
        session = drag_session()
        metrics = scroll_metrics(
            session.recorder.scroll_events(), session.recorder.wheel_ticks()
        )
        assert metrics.median_scroll_step_px < 57.0
        assert metrics.wheelless


class TestDetectorsSpareIt:
    """Appendix D's conclusion, as assertions: scrollbar scrolling must
    not be flagged by scroll-based detectors."""

    def test_teleport_detector_passes(self):
        session = drag_session()
        verdict = TeleportScrollDetector().observe(session.recorder)
        assert not verdict.is_bot, verdict.reasons

    def test_metronome_detector_out_of_scope(self):
        """Frame-paced continuous scrolling has a metronomic cadence by
        nature; the detector's tick-wise scope keeps humans safe."""
        session = drag_session()
        verdict = MetronomeScrollDetector().observe(session.recorder)
        assert not verdict.is_bot, verdict.reasons

    def test_wheel_humans_still_judged(self):
        """Scoping did not blind the detector to tick-wise scrolling."""
        session = Session(automated=False, page_height=9000)
        agent = HumanAgent(HumanProfile(seed=6))
        agent.scroll_by(session, 2000.0)  # wheel ticks
        metrics = scroll_metrics(
            session.recorder.scroll_events(), session.recorder.wheel_ticks()
        )
        assert 40.0 <= metrics.median_scroll_step_px <= 80.0
        assert not MetronomeScrollDetector().observe(session.recorder).is_bot
