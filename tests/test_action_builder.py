"""The W3C ActionBuilder (Selenium 4 API parity)."""

import pytest

from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver.action_builder import ActionBuilder
from repro.webdriver.driver import make_browser_driver
from repro.webdriver.errors import InvalidArgumentException
from repro.webdriver.keys import Keys


@pytest.fixture
def rig():
    driver = make_browser_driver(page_height=5000)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder


class TestPointerSource:
    def test_click_element(self, rig):
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.pointer_action.click(driver.find_element_by_id("submit"))
        builder.perform()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        center = driver.find_element_by_id("submit").dom_element.center
        assert clicks[0].position == (center.x, center.y)

    def test_move_with_offset(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        builder = ActionBuilder(driver)
        builder.pointer_action.move_to(element, 10, -5)
        builder.perform()
        t, x, y = recorder.mouse_path()[-1]
        center = element.dom_element.center
        assert (x, y) == (center.x + 10, center.y - 5)

    def test_move_respects_duration_lower_bound(self, rig):
        """The builder uses the same patched factory HLISA overrides."""
        driver, _ = rig
        from repro.core import patching
        from repro.webdriver import actions

        builder = ActionBuilder(driver)
        builder.pointer_action.move_to_location(100, 100)
        move = builder.pointer_action._queue[0]
        assert move.duration_ms == actions.MIN_POINTER_MOVE_DURATION_MS
        patching.patch_pointer_move_duration()
        builder.pointer_action.move_by(10, 10)
        # New moves pick up the patched factory at call time.
        assert builder.pointer_action._queue[1].duration_ms >= 50.0

    def test_double_and_context_click(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        builder = ActionBuilder(driver)
        builder.pointer_action.double_click(element)
        builder.perform()
        assert len(recorder.of_type("dblclick")) == 1
        builder.pointer_action.context_click(element)
        builder.perform()
        assert len(recorder.of_type("contextmenu")) == 1

    def test_click_and_hold_release(self, rig):
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.pointer_action.click_and_hold(driver.find_element_by_id("submit"))
        builder.pointer_action.pause(0.25)
        builder.pointer_action.release()
        builder.perform()
        assert recorder.clicks()[0].dwell_ms == pytest.approx(250.0, abs=2)


class TestKeySource:
    def test_send_keys_with_specials(self, rig):
        driver, _ = rig
        area = driver.find_element_by_id("text_area")
        driver.window.document.set_focus(area.dom_element)
        builder = ActionBuilder(driver)
        builder.key_action.send_keys("ab" + Keys.BACKSPACE + "c")
        builder.perform()
        assert area.get_attribute("value") == "ac"

    def test_key_down_up_modifiers(self, rig):
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.key_action.key_down("Shift").send_keys("a").key_up("Shift")
        builder.perform()
        a_down = [e for e in recorder.of_type("keydown") if e.key == "a"][0]
        assert a_down.shift_key


class TestWheelSource:
    def test_scroll_by_amount(self, rig):
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.wheel_action.scroll_by_amount(0, 900)
        builder.perform()
        assert driver.window.scroll_y == 900
        assert recorder.of_type("wheel") == []  # programmatic, as in real WD

    def test_scroll_to_element(self, rig):
        driver, _ = rig
        deep = driver.window.document.create_element(
            "button", Box(200, 4200, 100, 40), id="deep"
        )
        builder = ActionBuilder(driver)
        builder.wheel_action.scroll_to_element(driver.find_element_by_id("deep"))
        builder.perform()
        assert driver.window.is_in_viewport(deep.center)


class TestTickMerging:
    def test_devices_interleave_per_tick(self, rig):
        """Pointer and key actions queued together alternate tick-wise."""
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.pointer_action.pointer_down().pointer_up()
        builder.key_action.key_down("x").key_up("x")
        builder.perform()
        types = [e.type for e in recorder.events if e.type in ("mousedown", "keydown")]
        assert types == ["mousedown", "keydown"]

    def test_clear_actions(self, rig):
        driver, recorder = rig
        builder = ActionBuilder(driver)
        builder.pointer_action.click(driver.find_element_by_id("submit"))
        builder.clear_actions()
        builder.perform()
        assert recorder.clicks() == []

    def test_negative_pause_rejected(self, rig):
        driver, _ = rig
        with pytest.raises(InvalidArgumentException):
            ActionBuilder(driver).pointer_action.pause(-1)
