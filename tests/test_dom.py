"""DOM: element tree, hit testing, selectors, focus."""

import pytest

from repro.dom.document import Document
from repro.dom.element import Element
from repro.geometry import Box, Point


class TestElement:
    def test_center_requires_layout(self):
        with pytest.raises(ValueError):
            Element("div").center

    def test_center(self):
        assert Element("div", Box(10, 10, 20, 20)).center == Point(20, 20)

    def test_contains_point_respects_visibility(self):
        element = Element("div", Box(0, 0, 50, 50))
        assert element.contains_point(Point(25, 25))
        element.visible = False
        assert not element.contains_point(Point(25, 25))

    def test_focusable_tags(self):
        assert Element("input", Box(0, 0, 1, 1)).focusable
        assert Element("a", Box(0, 0, 1, 1)).focusable
        assert not Element("div", Box(0, 0, 1, 1)).focusable

    def test_tabindex_makes_focusable(self):
        element = Element("div", Box(0, 0, 1, 1), attributes={"tabindex": "0"})
        assert element.focusable

    def test_matches_selectors(self):
        element = Element("button", id="go", classes=["primary"])
        assert element.matches("button")
        assert element.matches("#go")
        assert element.matches(".primary")
        assert not element.matches("#stop")

    def test_iter_subtree_depth_first(self):
        root = Element("div")
        a = Element("span")
        b = Element("em")
        inner = Element("b")
        root.append_child(a)
        a.append_child(inner)
        root.append_child(b)
        assert [e.tag for e in root.iter_subtree()] == ["div", "span", "b", "em"]


class TestDocument:
    def test_create_and_lookup_by_id(self):
        document = Document()
        element = document.create_element("button", Box(0, 0, 10, 10), id="go")
        assert document.get_element_by_id("go") is element

    def test_register_indexes_subtree(self):
        document = Document()
        parent = Element("div", Box(0, 0, 100, 100))
        child = Element("span", Box(0, 0, 10, 10), id="nested")
        parent.append_child(child)
        document.body.append_child(parent)
        assert document.get_element_by_id("nested") is child

    def test_query_selector_first_match(self):
        document = Document()
        first = document.create_element("p", Box(0, 0, 5, 5), classes=["x"])
        document.create_element("p", Box(0, 10, 5, 5), classes=["x"])
        assert document.query_selector(".x") is first

    def test_query_selector_all(self):
        document = Document()
        document.create_element("p", Box(0, 0, 5, 5))
        document.create_element("p", Box(0, 10, 5, 5))
        assert len(document.query_selector_all("p")) == 2

    def test_element_at_deepest_hit(self):
        document = Document()
        outer = document.create_element("div", Box(0, 0, 200, 200))
        inner = document.create_element("button", Box(50, 50, 50, 50), parent=outer)
        assert document.element_at(Point(60, 60)) is inner
        assert document.element_at(Point(10, 10)) is outer

    def test_element_at_falls_back_to_body(self):
        document = Document()
        assert document.element_at(Point(999999, 5)) is document.body

    def test_hidden_element_not_hit(self):
        document = Document()
        element = document.create_element("div", Box(0, 0, 50, 50))
        element.visible = False
        assert document.element_at(Point(25, 25)) is document.body

    def test_focus_transitions(self):
        document = Document()
        field = document.create_element("input", Box(0, 0, 50, 20), id="f")
        events = document.set_focus(field)
        assert [(t, e.id) for t, e in events] == [("focus", "f"), ("focusin", "f")]
        assert document.active_element is field
        assert field.focused

    def test_refocus_same_element_is_noop(self):
        document = Document()
        field = document.create_element("input", Box(0, 0, 50, 20))
        document.set_focus(field)
        assert document.set_focus(field) == []

    def test_blur_on_focus_change(self):
        document = Document()
        a = document.create_element("input", Box(0, 0, 50, 20), id="a")
        b = document.create_element("input", Box(0, 30, 50, 20), id="b")
        document.set_focus(a)
        events = document.set_focus(b)
        kinds = [t for t, _ in events]
        assert kinds == ["blur", "focusout", "focus", "focusin"]
        assert not a.focused and b.focused

    def test_scroll_height(self):
        assert Document(800, 30000).scroll_height == 30000
