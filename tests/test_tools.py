"""Appendix G: the tool-comparison backends and the Table 4 matrix."""

import pytest

from repro.experiment.session import Session
from repro.geometry import Box
from repro.tools import BACKEND_REGISTRY, FEATURES, build_feature_matrix, make_backend, probe_backend
from repro.tools.base import Unsupported
from repro.tools.matrix import TABLE4_COLUMNS


@pytest.fixture(scope="module")
def matrix():
    return build_feature_matrix(click_attempts=100)


class TestRegistry:
    def test_all_paper_columns_registered(self):
        from repro.tools import matrix as _  # ensure registration ran

        for name in TABLE4_COLUMNS:
            assert name in BACKEND_REGISTRY, name

    def test_make_backend(self):
        backend = make_backend("BezMouse")
        assert backend.name == "BezMouse"


class TestUnsupportedModalities:
    def test_scroller_cannot_click(self):
        session = Session(automated=True)
        button = session.document.create_element("button", Box(10, 10, 50, 30))
        with pytest.raises(Unsupported):
            make_backend("Scroller").click_element(session, button)

    def test_hmm_cannot_type(self):
        session = Session(automated=True)
        area = session.document.create_element("textarea", Box(10, 10, 200, 60))
        with pytest.raises(Unsupported):
            make_backend("HMM").type_text(session, area, "x")

    def test_pyclick_cannot_scroll(self):
        session = Session(automated=True, page_height=4000)
        with pytest.raises(Unsupported):
            make_backend("PyC").scroll_by(session, 500)


class TestMatrixShape:
    def test_all_features_present(self, matrix):
        assert set(matrix.rows) == set(FEATURES)

    def test_hlisa_has_most_features(self, matrix):
        """The paper's qualitative headline: HLISA covers the most."""
        hlisa = matrix.feature_count("HLISA")
        for column in matrix.columns:
            if column != "HLISA":
                assert hlisa > matrix.feature_count(column)

    def test_hlisa_covers_all_modalities(self, matrix):
        for feature in ("mouse_movement", "click_functionality", "scrolling", "keyboard"):
            assert matrix.supported(feature, "HLISA")

    def test_hlisa_core_features(self, matrix):
        for feature in (
            "realistic_speed",
            "accel_decel",
            "shivering",
            "curve",
            "random_in_element",
            "realistic_dwell",
            "pause_between_ticks",
            "finger_pause",
            "realistic_tick_distance",
            "flight_time",
            "dwell_time",
            "timings_based_on_data",
            "selenium_ready",
        ):
            assert matrix.supported(feature, "HLISA"), feature

    def test_hlisa_does_not_claim_accidental_clicks(self, matrix):
        """Appendix F: misclicking is out of scope for HLISA."""
        assert not matrix.supported("accidental_right_click", "HLISA")
        assert not matrix.supported("accidental_no_click", "HLISA")

    def test_clickbot_unique_accidental_features(self, matrix):
        for feature in (
            "accidental_right_click",
            "accidental_double_click",
            "accidental_no_click",
        ):
            assert matrix.supported(feature, "ClickBot")
            others = [
                c
                for c in matrix.columns
                if c != "ClickBot" and matrix.supported(feature, c)
            ]
            assert others == [], f"{feature} also claimed by {others}"

    def test_scroller_is_scroll_only(self, matrix):
        assert matrix.supported("scrolling", "Scroller")
        assert matrix.supported("finger_pause", "Scroller")
        assert not matrix.supported("mouse_movement", "Scroller")
        assert not matrix.supported("keyboard", "Scroller")

    def test_only_hlisa_and_scroller_scroll(self, matrix):
        scrollers = [c for c in matrix.columns if matrix.supported("scrolling", c)]
        assert set(scrollers) == {"Scroller", "HLISA"}

    def test_keyboard_only_thesis_and_hlisa(self, matrix):
        typists = [c for c in matrix.columns if matrix.supported("keyboard", c)]
        assert set(typists) == {"[20]", "HLISA"}

    def test_thesis_has_data_based_timings(self, matrix):
        assert matrix.supported("timings_based_on_data", "[20]")
        assert matrix.supported("flight_time", "[20]")
        assert not matrix.supported("dwell_time", "[20]")  # no dwell model

    def test_naive_bezier_tools_lack_accel(self, matrix):
        assert not matrix.supported("accel_decel", "BezMouse")
        assert not matrix.supported("accel_decel", "HMM")

    def test_hmm_movement_is_smooth(self, matrix):
        assert matrix.supported("mouse_movement", "HMM")
        assert not matrix.supported("shivering", "HMM")

    def test_random_in_element_is_rare(self, matrix):
        """Table 4 footnote b: absence makes interaction obviously
        artificial -- yet almost no tool randomises in-element position."""
        supporting = [
            c for c in matrix.columns if matrix.supported("random_in_element", c)
        ]
        assert "HLISA" in supporting
        assert len(supporting) <= 3

    def test_selenium_ready_columns(self, matrix):
        ready = [c for c in matrix.columns if matrix.supported("selenium_ready", c)]
        assert set(ready) == {"Scroller", "[20]", "HLISA"}

    def test_format_table_renders(self, matrix):
        rendering = matrix.format_table()
        assert "HLISA" in rendering
        assert "scrolling" in rendering


class TestSeleniumReferenceColumn:
    def test_selenium_backend_probe(self):
        features = probe_backend(make_backend("Selenium"), click_attempts=30)
        assert features["mouse_movement"]
        assert not features["curve"]
        assert not features["realistic_speed"]
        assert not features["random_in_element"]
        assert features["click_functionality"]
        assert not features["realistic_dwell"]
