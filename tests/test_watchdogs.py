"""Watchdogs x circuit breaker: recycle parity, single-count, ablation.

The recovery policy moved from inline supervisor branches to pluggable
bus subscribers (docs/EVENT_BUS.md).  These tests pin the contract at
the seam: watchdog interventions must reproduce the old recycle
semantics exactly, and the per-domain :class:`CircuitBreaker` must see
exactly one recorded failure per failed attempt -- a watchdog recycle
or stall abort is an *intervention*, never an extra transient failure.
"""

import pytest

from repro.bus import BrowserRecycled
from repro.crawl import (
    CrawlSupervisor,
    FailureReason,
    HostileArchetype,
    OpenWPMCrawler,
    SiteConfig,
    SupervisorConfig,
)
from repro.crawl.watchdogs import (
    CrashWatchdog,
    ModalOverlayWatchdog,
    RecycleWatchdog,
    StallWatchdog,
    default_watchdogs,
)
from repro.faults import FaultPlan, FaultType
from repro.faults.plan import ScheduledFault


def one_site(hostile=None, intensity=0.4):
    return [
        SiteConfig(
            rank=0,
            domain="site-0.example",
            hostile=hostile,
            hostile_intensity=intensity,
        )
    ]


def planned_faults(domain, fault_type, attempts_affected, visit_index=0):
    """A hand-built plan: exactly one scheduled fault, nothing random."""
    plan = FaultPlan(seed=0, rate=0.0)
    plan.schedule[(domain, visit_index)] = ScheduledFault(
        domain, visit_index, fault_type, attempts_affected
    )
    return plan


def supervised(plan=None, *, instances=1, watchdogs=None, **config):
    crawler = OpenWPMCrawler("watchdogs", instances=instances, seed=7)
    defaults = dict(per_visit_failure=0.0)
    defaults.update(config)
    return CrawlSupervisor(
        crawler,
        config=SupervisorConfig(**defaults),
        plan=plan,
        watchdogs=watchdogs,
    )


def counters(supervisor):
    return supervisor.metrics.state_dict()["counters"]


class TestCrashRecycleParity:
    def test_fatal_fault_recycles_immediately(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.DRIVER_CRASH, attempts_affected=2
        )
        sup = supervised(plan)
        result = sup.crawl(population)
        # Two crashed attempts -> two immediate recycles, then success.
        assert sup.stats.recycles == 2
        assert counters(sup)["watchdog.crash.recycle_requested"] == 2
        assert counters(sup)["recycles"] == 2
        record = result.records[0]
        assert record.reached and record.recovered
        assert record.attempts == 3
        # The recycle reset the per-browser fault count.
        assert sup._instances[0].fault_count == 0

    def test_fault_budget_recycles_proactively(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.NETWORK_RESET, attempts_affected=2
        )
        sup = supervised(plan, recycle_after_faults=2)
        result = sup.crawl(population)
        # Two non-fatal faults accumulate to the budget: one proactive
        # recycle by the RecycleWatchdog, none by the CrashWatchdog.
        assert sup.stats.recycles == 1
        assert counters(sup)["watchdog.recycle.recycle_requested"] == 1
        assert "watchdog.crash.recycle_requested" not in counters(sup)
        assert result.records[0].reached

    def test_recycle_publishes_confirmation_event(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.DRIVER_CRASH, attempts_affected=1
        )
        sup = supervised(plan)
        recycled = []
        sup.bus.subscribe(
            BrowserRecycled, lambda e: recycled.append((e.reason, e.browser))
        )
        sup.crawl(population)
        assert recycled == [("fatal-fault", 0)]

    def test_watchdogs_off_never_recycles(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.DRIVER_CRASH, attempts_affected=2
        )
        sup = supervised(plan, watchdogs=())
        result = sup.crawl(population)
        # The ablation baseline retries into the dead browser: no
        # recycling, but the simulated backend still lets it limp on.
        assert sup.stats.recycles == 0
        assert sup._instances[0].fault_count == 0  # nobody counted health
        assert result.records[0].attempts == 3


class TestBreakerSingleCount:
    def test_breaker_opens_exactly_at_threshold_despite_recycles(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.DRIVER_CRASH, attempts_affected=4
        )
        sup = supervised(plan, breaker_failure_threshold=4)
        result = sup.crawl(population)
        # Four crashed attempts -> four breaker failures -> the breaker
        # opens once, on the fourth.  Four watchdog recycles happened in
        # between and none of them added an extra failure record.
        assert sup.stats.recycles == 4
        assert counters(sup)["breaker.open"] == 1
        record = result.records[0]
        assert not record.reached
        assert record.failure_reason == FailureReason.exhausted(
            FaultType.DRIVER_CRASH.value
        )

    def test_breaker_stays_closed_below_threshold(self):
        population = one_site()
        plan = planned_faults(
            population[0].domain, FaultType.DRIVER_CRASH, attempts_affected=2
        )
        sup = supervised(plan, breaker_failure_threshold=4)
        result = sup.crawl(population)
        assert sup.stats.recycles == 2
        assert "breaker.open" not in counters(sup)
        assert result.records[0].reached

    def test_stall_aborts_count_one_failure_each(self):
        population = one_site(HostileArchetype.STALLING, intensity=1.0)
        sup = supervised(breaker_failure_threshold=4)
        result = sup.crawl(population)
        # Every attempt stalls; the StallWatchdog bounds each at the
        # step budget (retryable "stalled").  Four aborted attempts are
        # exactly four breaker failures: the breaker opens once.
        assert counters(sup)["watchdog.stall.aborted"] == 4
        assert counters(sup)["breaker.open"] == 1
        record = result.records[0]
        assert record.attempts == 4
        assert record.failure_reason == FailureReason.exhausted(
            FailureReason.STALLED
        )

    def test_successful_intervention_records_no_failure(self):
        population = one_site(HostileArchetype.MODAL_OVERLAY)
        sup = supervised()
        result = sup.crawl(population)
        # The overlay dismissal recovers the visit: a success, not a
        # breaker failure of any kind.
        assert counters(sup)["watchdog.modal.overlay_dismissed"] == 1
        assert not any(name.startswith("breaker.") for name in counters(sup))
        assert result.records[0].reached

    def test_breaker_skip_after_watchdog_bounded_failures(self):
        # Two visits to the same stalling domain: visit 0 exhausts its
        # four bounded attempts and opens the breaker; visit 1 is
        # short-circuited as CIRCUIT_OPEN (skipped, zero attempts), not
        # hammered.
        population = one_site(HostileArchetype.STALLING, intensity=1.0)
        sup = supervised(
            instances=2,
            breaker_failure_threshold=4,
            breaker_cooldown_ms=10_000_000.0,
        )
        result = sup.crawl(population)
        first, second = result.records
        assert first.failure_reason == FailureReason.exhausted(
            FailureReason.STALLED
        )
        assert second.failure_reason == FailureReason.CIRCUIT_OPEN
        assert second.attempts == 0
        assert sup.stats.breaker_skips == 1


class TestGracefulDegradation:
    def test_unwatched_stall_is_permanent_and_unbounded(self):
        population = one_site(HostileArchetype.STALLING, intensity=1.0)
        sup = supervised(watchdogs=())
        result = sup.crawl(population)
        record = result.records[0]
        assert record.failure_reason == FailureReason.STALLED_UNBOUNDED
        assert record.attempts == 1  # permanent: never retried

    def test_unbounded_stall_costs_the_external_kill_timeout(self):
        population = one_site(HostileArchetype.STALLING, intensity=1.0)
        bounded = supervised(breaker_failure_threshold=99)
        bounded.crawl(population)
        unbounded = supervised(watchdogs=())
        unbounded.crawl(population)
        # One unbounded stall costs more simulated time than four
        # watchdog-bounded attempts plus their backoff.
        assert unbounded.clock.now() > bounded.clock.now()

    def test_unwatched_overlay_fails_the_visit_permanently(self):
        population = one_site(HostileArchetype.MODAL_OVERLAY)
        sup = supervised(watchdogs=())
        result = sup.crawl(population)
        record = result.records[0]
        assert record.failure_reason == FailureReason.MODAL_OVERLAY
        assert record.attempts == 1

    def test_stall_only_watchdog_set_is_composable(self):
        # A custom watchdog set: stall bounding without modal recovery.
        population = one_site(HostileArchetype.MODAL_OVERLAY)
        sup = supervised(watchdogs=(StallWatchdog(),))
        result = sup.crawl(population)
        assert result.records[0].failure_reason == FailureReason.MODAL_OVERLAY
        assert "watchdog.modal.overlay_dismissed" not in counters(sup)
