"""Selenium Keys constants and their decoding through every typing path."""

import pytest

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.webdriver import ActionChains
from repro.webdriver.driver import make_browser_driver
from repro.webdriver.keys import Keys, decode_keys, is_special


class TestDecoding:
    def test_plain_text_unchanged(self):
        assert decode_keys("abc") == ["a", "b", "c"]

    def test_special_codepoints_decoded(self):
        assert decode_keys(Keys.ENTER) == ["Enter"]
        assert decode_keys(Keys.BACKSPACE) == ["Backspace"]
        assert decode_keys(Keys.TAB) == ["Tab"]
        assert decode_keys(Keys.SHIFT) == ["Shift"]

    def test_return_and_enter_same_key(self):
        assert decode_keys(Keys.RETURN) == decode_keys(Keys.ENTER)

    def test_space_codepoint_is_space(self):
        assert decode_keys(Keys.SPACE) == [" "]

    def test_mixed_text(self):
        assert decode_keys("a" + Keys.ENTER + "b") == ["a", "Enter", "b"]

    def test_is_special(self):
        assert is_special("Enter")
        assert not is_special("x")

    def test_codepoints_are_private_use(self):
        for name in ("ENTER", "TAB", "BACKSPACE", "DELETE", "META"):
            code = ord(getattr(Keys, name))
            assert 0xE000 <= code <= 0xF8FF


class TestThroughSelenium:
    def test_enter_inserts_newline(self):
        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        area.send_keys("a" + Keys.ENTER + "b")
        assert area.get_attribute("value") == "a\nb"

    def test_backspace_erases(self):
        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        area.send_keys("ab" + Keys.BACKSPACE + "c")
        assert area.get_attribute("value") == "ac"

    def test_action_chains_send_keys(self):
        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        ActionChains(driver).send_keys_to_element(area, "x" + Keys.ENTER).perform()
        assert area.get_attribute("value") == "x\n"


class TestThroughHLISA:
    def test_special_keys_in_human_rhythm(self):
        driver = make_browser_driver()
        area = driver.find_element_by_id("text_area")
        chain = HLISA_ActionChains(driver, seed=1)
        chain.send_keys_to_element(area, "ab" + Keys.BACKSPACE + "c" + Keys.ENTER + "d")
        chain.perform()
        assert area.get_attribute("value") == "ac\nd"

    def test_special_keys_do_not_trigger_shift(self):
        from repro.events.recorder import EventRecorder
        from repro.events.taxonomy import ALL_INTERACTION_EVENTS

        driver = make_browser_driver()
        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        area = driver.find_element_by_id("text_area")
        chain = HLISA_ActionChains(driver, seed=2)
        chain.send_keys_to_element(area, "a" + Keys.ENTER + "b")
        chain.perform()
        shift_downs = [e for e in recorder.of_type("keydown") if e.key == "Shift"]
        assert shift_downs == []
