"""Keyboard scrolling: Appendix D's wheel-less scroll origins."""

import pytest

from repro.browser.input_pipeline import InputPipeline
from repro.browser.window import Window
from repro.detection.artificial import TeleportScrollDetector
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box


def make_rig(page_height=8000.0):
    window = Window(Document(1366, page_height))
    pipeline = InputPipeline(window)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(window)
    return window, pipeline, recorder


def press(pipeline, window, key, times=1, gap_ms=180.0):
    for _ in range(times):
        pipeline.key_down(key)
        window.clock.advance(60)
        pipeline.key_up(key)
        window.clock.advance(gap_ms)


class TestScrollKeys:
    def test_arrow_down_scrolls_line_wise(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, "ArrowDown", times=3)
        assert window.scroll_y == 3 * InputPipeline.ARROW_SCROLL_PX
        assert recorder.of_type("wheel") == []
        assert len(recorder.scroll_events()) == 3

    def test_arrow_up_scrolls_back(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, "ArrowDown", times=4)
        press(pipeline, window, "ArrowUp", times=2)
        assert window.scroll_y == 2 * InputPipeline.ARROW_SCROLL_PX

    def test_space_bar_pages_down(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, " ")
        expected = window.viewport_height - InputPipeline.PAGE_SCROLL_OVERLAP_PX
        assert window.scroll_y == expected

    def test_page_down_and_up(self):
        window, pipeline, _ = make_rig()
        press(pipeline, window, "PageDown", times=2)
        press(pipeline, window, "PageUp")
        expected = window.viewport_height - InputPipeline.PAGE_SCROLL_OVERLAP_PX
        assert window.scroll_y == expected

    def test_end_and_home(self):
        window, pipeline, _ = make_rig()
        press(pipeline, window, "End")
        assert window.scroll_y == window.max_scroll_y
        press(pipeline, window, "Home")
        assert window.scroll_y == 0.0

    def test_typing_in_field_does_not_scroll(self):
        window, pipeline, _ = make_rig()
        field = window.document.create_element("textarea", Box(100, 100, 300, 60))
        window.document.set_focus(field)
        press(pipeline, window, " ")
        assert window.scroll_y == 0.0
        assert field.value == " "

    def test_arrow_in_field_does_not_scroll(self):
        window, pipeline, _ = make_rig()
        field = window.document.create_element("input", Box(100, 100, 300, 30))
        window.document.set_focus(field)
        press(pipeline, window, "ArrowDown")
        assert window.scroll_y == 0.0


class TestDetectorCaveat:
    """The paper's Appendix D point: big wheel-less scrolls are human
    when a scroll key explains them."""

    def test_space_bar_human_not_flagged(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, " ", times=6, gap_ms=700.0)
        verdict = TeleportScrollDetector().observe(recorder)
        assert not verdict.is_bot, verdict.reasons

    def test_end_key_jump_not_flagged(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, "End")
        assert not TeleportScrollDetector().observe(recorder).is_bot

    def test_programmatic_jump_still_flagged(self):
        window, pipeline, recorder = make_rig()
        pipeline.scroll_programmatic(0, 5000)
        assert TeleportScrollDetector().observe(recorder).is_bot

    def test_key_long_before_scroll_does_not_exempt(self):
        window, pipeline, recorder = make_rig()
        press(pipeline, window, " ")  # legitimate page-down
        window.clock.advance(5000)
        pipeline.scroll_programmatic(0, 6000)  # unrelated teleport
        assert TeleportScrollDetector().observe(recorder).is_bot
