"""The intra-level refinement cycle (Section 4.2 / Appendix F)."""

import numpy as np
import pytest

from repro.experiment import HLISAAgent, HumanAgent, TypingTask
from repro.humans.typing import lognormal_ms
from repro.models.refinements import (
    LognormalTypingRhythm,
    SkewAwareTypingDetector,
    sample_skewness,
)
from repro.models.typing_rhythm import TypingParams

LONG_TEXT = (
    "The quick brown fox jumps over the lazy dog, twice. "
    "Pack my box with five dozen liquor jugs. Forever and ever."
)


def refined_hlisa_agent(seed=3):
    agent = HLISAAgent(seed=seed)
    original = agent._chain_for

    def patched(session):
        chain = original(session)
        chain._typing = LognormalTypingRhythm(chain._rng, chain._typing.params)
        return chain

    agent._chain_for = patched
    return agent


class TestLognormalSampling:
    def test_moment_matching(self):
        rng = np.random.default_rng(0)
        samples = [lognormal_ms(rng, 100.0, 25.0) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.02)
        assert np.std(samples) == pytest.approx(25.0, rel=0.05)

    def test_right_skewed(self):
        rng = np.random.default_rng(1)
        samples = [lognormal_ms(rng, 100.0, 25.0) for _ in range(5000)]
        assert sample_skewness(samples) > 0.4

    def test_positive_mean_required(self):
        with pytest.raises(ValueError):
            lognormal_ms(np.random.default_rng(0), -1.0, 5.0)


class TestSkewness:
    def test_symmetric_sample_near_zero(self):
        rng = np.random.default_rng(2)
        assert abs(sample_skewness(rng.normal(0, 1, 2000))) < 0.15

    def test_needs_three_values(self):
        with pytest.raises(ValueError):
            sample_skewness([1.0, 2.0])

    def test_constant_sample_zero(self):
        assert sample_skewness([5.0] * 10) == 0.0


class TestRefinementCycle:
    """Detector refinement catches stock HLISA; simulator refinement
    restores the balance -- one full turn of the Fig. 3 crank."""

    def test_human_passes(self):
        recorder = TypingTask(LONG_TEXT).run(HumanAgent()).recorder
        assert not SkewAwareTypingDetector().observe(recorder).is_bot

    def test_stock_hlisa_caught(self):
        recorder = TypingTask(LONG_TEXT).run(HLISAAgent(seed=3)).recorder
        verdict = SkewAwareTypingDetector().observe(recorder)
        assert verdict.is_bot
        assert "skewness" in verdict.reasons[0]

    def test_refined_hlisa_passes(self):
        recorder = TypingTask(LONG_TEXT).run(refined_hlisa_agent()).recorder
        assert not SkewAwareTypingDetector().observe(recorder).is_bot

    def test_refined_hlisa_still_passes_standard_batteries(self):
        """The refinement must not regress the standard Fig. 3 position."""
        from repro.detection import DetectorBattery, DetectionLevel

        recorder = TypingTask(LONG_TEXT).run(refined_hlisa_agent()).recorder
        report = DetectorBattery(DetectionLevel.DEVIATION).evaluate(recorder)
        assert not report.is_bot, report.triggered_names()

    def test_detector_needs_enough_strokes(self):
        recorder = TypingTask("short text").run(HLISAAgent(seed=3)).recorder
        assert not SkewAwareTypingDetector().observe(recorder).is_bot

    def test_not_in_standard_battery(self):
        """The refined detector is the *next* move, not the status quo."""
        from repro.detection.deviation import DEVIATION_DETECTORS

        assert SkewAwareTypingDetector not in DEVIATION_DETECTORS

    def test_lognormal_rhythm_same_plan_structure(self):
        params = TypingParams()
        rng = np.random.default_rng(4)
        plan = LognormalTypingRhythm(rng, params).plan("Hi there!")
        downs = [k for _, kind, k in plan if kind == "down" and k != "Shift"]
        assert downs == list("Hi there!")
        assert any(k == "Shift" for _, _, k in plan)
