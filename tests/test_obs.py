"""repro.obs: deterministic spans, metrics, trace export, crawl report."""

import json

import pytest

from repro.clock import VirtualClock
from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    PopulationConfig,
    SupervisorConfig,
    generate_population,
)
from repro.faults import FaultPlan
from repro.faults.types import FaultError, FaultType, NetworkResetFault
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    build_report,
    parse_trace,
    read_trace,
    trace_to_jsonl,
    write_trace,
)
from repro.obs.cli import main as obs_main
from repro.webdriver.driver import make_browser_driver


def tiny_population(n=10, seed=3):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=0,
            n_less_ads_detectors=0,
            n_block_detectors=1,
            n_captcha_detectors=0,
            n_freeze_video_detectors=0,
            n_other_signal_ad_detectors=0,
            n_side_effect_blockers=0,
            n_http_only_detectors=1,
        )
    )


def make_supervisor(population, fault_rate=0.2, seed=7, instances=2, **config):
    crawler = OpenWPMCrawler("obs", instances=instances, seed=seed)
    plan = FaultPlan.generate(population, instances, rate=fault_rate, seed=5)
    return CrawlSupervisor(crawler, config=SupervisorConfig(**config), plan=plan)


class TestSpans:
    def test_nesting_parent_ids_and_start_order(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        a = tracer.start("crawl")
        b = tracer.start("visit")
        clock.advance(5.0)
        c = tracer.start("attempt")
        tracer.end(c)
        tracer.end(b)
        d = tracer.start("visit")
        tracer.end(d)
        tracer.end(a)
        assert [s.span_id for s in tracer.spans] == [1, 2, 3, 4]
        assert a.parent_id == 0
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id
        assert d.parent_id == a.span_id
        assert c.start_ms == 5.0 and b.duration_ms == 5.0

    def test_end_enforces_lifo_discipline(self):
        tracer = Tracer(VirtualClock())
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(ValueError):
            tracer.end(outer)

    def test_events_attach_to_innermost_open_span(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        clock.advance(3.0)
        tracer.event("fault", fault_type="driver-crash")
        tracer.end(inner)
        tracer.event("backoff", delay_ms=500.0)
        tracer.end(outer)
        assert [e.name for e in inner.events] == ["fault"]
        assert inner.events[0].ts_ms == 3.0
        assert [e.name for e in outer.events] == ["backoff"]

    def test_context_manager_marks_error_status(self):
        tracer = Tracer(VirtualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("risky"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error:RuntimeError"
        assert not span.open

    def test_state_roundtrip_preserves_open_stack(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        tracer.start("crawl")
        tracer.start("visit")
        clock.advance(7.0)
        state = json.loads(json.dumps(tracer.state_dict()))
        other = Tracer(VirtualClock(clock.now()))
        other.load_state(state)
        assert [s.to_dict() for s in other.spans] == [
            s.to_dict() for s in tracer.spans
        ]
        assert [s.span_id for s in other.open_spans] == [1, 2]
        other.end(other.open_spans[-1])
        assert other.spans[1].end_ms == 7.0

    def test_resume_or_start_reopens_closed_root(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        root = tracer.start("crawl")
        clock.advance(10.0)
        tracer.end(root)
        again = tracer.resume_or_start("crawl")
        assert again is root and root.open
        clock.advance(5.0)
        tracer.end(root)
        assert root.end_ms == 15.0
        assert len(tracer.spans) == 1  # no second root forked

    def test_null_tracer_records_nothing(self):
        NULL_TRACER.start("x")
        NULL_TRACER.event("y")
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.state_dict() is None
        assert not NULL_TRACER.enabled


class TestMetrics:
    def test_counter_and_histogram_accumulate(self):
        metrics = MetricsRegistry()
        metrics.counter("faults").inc()
        metrics.counter("faults").inc(2)
        assert metrics.counter_value("faults") == 3
        hist = metrics.histogram("latency", bounds=(10.0, 100.0))
        for value in (5.0, 10.0, 11.0, 250.0):
            hist.observe(value)
        # Inclusive upper bounds plus one overflow bucket.
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx((5 + 10 + 11 + 250) / 4.0)

    def test_counters_reject_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_state_dict_sorted_and_creation_order_independent(self):
        a = MetricsRegistry()
        a.counter("zeta").inc()
        a.counter("alpha").inc()
        b = MetricsRegistry()
        b.counter("alpha").inc()
        b.counter("zeta").inc()
        assert json.dumps(a.state_dict()) == json.dumps(b.state_dict())
        assert list(a.state_dict()["counters"]) == ["alpha", "zeta"]

    def test_state_roundtrip(self):
        metrics = MetricsRegistry()
        metrics.counter("visits").inc(4)
        metrics.histogram("ms").observe(42.0)
        restored = MetricsRegistry()
        restored.load_state(json.loads(json.dumps(metrics.state_dict())))
        assert restored.state_dict() == metrics.state_dict()
        restored.histogram("ms").observe(42.0)
        assert restored.histogram("ms").count == 2


class TestExport:
    def test_jsonl_roundtrip_and_byte_identity(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span("crawl", seed=7):
            with tracer.span("visit", domain="a.example"):
                clock.advance(12.5)
                tracer.event("fault", fault_type="driver-crash")
        text = trace_to_jsonl(tracer.spans)
        assert text.endswith("\n") and len(text.splitlines()) == 2
        spans = parse_trace(text)
        assert spans == tracer.spans
        assert trace_to_jsonl(spans) == text  # canonical: fixed point

    def test_write_and_read_trace_files(self, tmp_path):
        tracer = Tracer(VirtualClock())
        span = tracer.start("crawl")
        tracer.end(span)
        path = write_trace(tmp_path / "trace.jsonl", tracer.spans)
        assert read_trace(path) == tracer.spans

    def test_empty_trace_serialises_to_empty_string(self):
        assert trace_to_jsonl([]) == ""
        assert parse_trace("") == []


class TestReport:
    def trace(self):
        clock = VirtualClock()
        tracer = Tracer(clock)
        root = tracer.start("crawl")
        visit = tracer.start("visit", domain="a.example", attempts=2)
        bad = tracer.start("attempt", attempt=0)
        clock.advance(2_000.0)
        tracer.event("fault", fault_type="driver-crash", hook="get")
        tracer.event("browser.recycle", browser=0, reason="fatal-fault")
        tracer.event("backoff", delay_ms=500.0, attempt=0)
        clock.advance(500.0)
        bad.status = "fault:driver-crash"
        tracer.end(bad)
        good = tracer.start("attempt", attempt=1)
        clock.advance(8_000.0)
        tracer.end(good)
        tracer.end(visit)
        tracer.end(root)
        return tracer.spans

    def test_build_report_aggregates(self):
        report = build_report(self.trace())
        assert report.visits == 1 and report.reached == 1 and report.failed == 0
        assert report.attempts == 2 and report.retries == 1
        assert report.faults == {"driver-crash": 1}
        assert report.recycles == 1
        assert report.backoff_ms == 500.0
        assert report.attempt_failed_ms == 2_500.0
        assert report.attempt_ok_ms == 8_000.0
        assert report.attempts_per_visit == [(2, 1)]
        assert report.span_totals["attempt"].count == 2

    def test_render_text_and_json(self):
        report = build_report(self.trace())
        text = report.render_text()
        assert "crawl report" in text and "driver-crash" in text
        data = json.loads(report.render_json())
        assert data["visits"] == 1 and data["faults"] == {"driver-crash": 1}

    def test_report_matches_supervisor_stats(self):
        population = tiny_population()
        sup = make_supervisor(population)
        sup.crawl(population)
        report = sup.report()
        assert report.visits == sup.stats.visits
        assert report.reached == sup.stats.reached
        assert report.failed == sup.stats.failed
        assert report.attempts == sup.stats.attempts
        assert report.retries == sup.stats.retries
        assert report.recycles == sup.stats.recycles
        assert sum(report.faults.values()) == sup.stats.faults_seen
        assert report.metrics == sup.metrics.state_dict()

    def test_report_surfaces_bus_and_watchdog_events(self):
        population = tiny_population()
        sup = make_supervisor(population)
        sup.crawl(population)
        report = sup.report()
        # Every attempt publishes a start/finish pair on the bus; the
        # trace-derived counts must match the metrics counters.
        counters = sup.metrics.state_dict()["counters"]
        assert report.bus_events["attempt_started"] == sup.stats.attempts
        assert report.bus_events["attempt_finished"] == sup.stats.attempts
        for name, count in report.bus_events.items():
            assert counters["bus.events." + name] == count
        # The crash watchdog drove every recycle this crawl performed.
        watchdog_recycles = sum(
            count
            for name, count in report.watchdog_events.items()
            if name.endswith(".recycle_requested")
        )
        assert watchdog_recycles == sup.stats.recycles
        for name, count in report.watchdog_events.items():
            assert counters["watchdog." + name] == count
        text = report.render_text()
        assert "event bus dispatches" in text
        assert "watchdog interventions" in text
        data = json.loads(report.render_json())
        assert data["bus_events"] == report.bus_events
        assert data["watchdog_events"] == report.watchdog_events


class TestCli:
    def trace_file(self, tmp_path):
        population = tiny_population()
        sup = make_supervisor(population)
        path = tmp_path / "trace.jsonl"
        sup.crawl(population, trace_path=path)
        return path, sup

    def test_report_text_to_stdout(self, tmp_path, capsys):
        path, _ = self.trace_file(tmp_path)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "crawl report" in out and "visits" in out

    def test_report_json_to_file(self, tmp_path):
        path, sup = self.trace_file(tmp_path)
        out = tmp_path / "report.json"
        assert (
            obs_main(["report", str(path), "--format", "json", "--out", str(out)])
            == 0
        )
        data = json.loads(out.read_text())
        assert data["visits"] == sup.stats.visits

    def test_missing_trace_errors(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err


class TestInstrumentation:
    def test_webdriver_commands_become_spans(self):
        driver = make_browser_driver()
        driver.tracer = Tracer(driver.window.clock)
        driver.get("https://a.example/")
        driver.find_element("id", "submit")
        driver.execute_script("window.scrollTo(0, 0)")
        names = [s.name for s in driver.tracer.spans]
        assert names == [
            "webdriver.get",
            "webdriver.find_element",
            "webdriver.execute_script",
        ]
        assert all(not s.open and s.status == "ok" for s in driver.tracer.spans)
        assert driver.tracer.spans[0].attrs == {"url": "https://a.example/"}

    def test_fault_marks_webdriver_span_status(self):
        class RaisingInjector:
            def on_hook(self, hook):
                if hook == "get":
                    raise NetworkResetFault(
                        FaultType.NETWORK_RESET, "a.example", 0, 0, "get"
                    )

        driver = make_browser_driver()
        driver.tracer = Tracer(driver.window.clock)
        driver.fault_injector = RaisingInjector()
        with pytest.raises(FaultError):
            driver.get("https://a.example/")
        (span,) = driver.tracer.spans
        assert span.status == "fault:network-reset"
        assert not span.open  # ended despite the exception

    def test_hlisa_perform_span_counts_pipeline_events(self):
        from repro.core.hlisa_action_chains import HLISA_ActionChains

        driver = make_browser_driver()
        driver.tracer = Tracer(driver.window.clock)
        chain = HLISA_ActionChains(driver, seed=11)
        chain.move_by_offset(120, 90).perform()
        spans = [s for s in driver.tracer.spans if s.name == "hlisa.perform"]
        assert len(spans) == 1
        assert spans[0].attrs["actions"] == 1
        assert spans[0].attrs["events"] > 0
        assert spans[0].duration_ms > 0
        # The pipeline counted per-event-type metrics through the tracer.
        state = driver.tracer.metrics.state_dict()
        assert state["counters"].get("events.mousemove", 0) > 0

    def test_untraced_driver_costs_no_spans_or_metrics(self):
        driver = make_browser_driver()
        driver.get("https://a.example/")
        assert driver.tracer is NULL_TRACER
        assert driver.pipeline.metrics is None
        assert driver.tracer.spans == []


class TestCrawlTraceDeterminism:
    def test_same_seed_traces_are_byte_identical(self, tmp_path):
        population = tiny_population()
        make_supervisor(population).crawl(
            population, trace_path=tmp_path / "a.jsonl"
        )
        make_supervisor(population).crawl(
            population, trace_path=tmp_path / "b.jsonl"
        )
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert len(a) > 0

    def test_resumed_trace_equals_uninterrupted(self, tmp_path):
        population = tiny_population()
        make_supervisor(population).crawl(
            population, trace_path=tmp_path / "full.jsonl"
        )
        checkpoint = tmp_path / "ck.json"
        make_supervisor(population).crawl(
            population[:4], checkpoint_path=checkpoint
        )
        resumed = make_supervisor(population)
        resumed.crawl(
            population, checkpoint_path=checkpoint, trace_path=tmp_path / "r.jsonl"
        )
        assert (
            (tmp_path / "r.jsonl").read_bytes()
            == (tmp_path / "full.jsonl").read_bytes()
        )

    def test_resumed_metrics_equal_uninterrupted(self, tmp_path):
        population = tiny_population()
        full = make_supervisor(population)
        full.crawl(population)
        checkpoint = tmp_path / "ck.json"
        make_supervisor(population).crawl(
            population[:7], checkpoint_path=checkpoint
        )
        resumed = make_supervisor(population)
        resumed.crawl(population, checkpoint_path=checkpoint)
        assert resumed.metrics.state_dict() == full.metrics.state_dict()

    def test_span_tree_covers_the_stack(self):
        population = tiny_population()
        sup = make_supervisor(population)
        sup.crawl(population)
        spans = sup.tracer.spans
        by_id = {s.span_id: s for s in spans}
        names = {s.name for s in spans}
        assert {"crawl", "visit", "attempt", "webdriver.get"} <= names
        roots = [s for s in spans if s.parent_id == 0]
        assert [s.name for s in roots] == ["crawl"]
        for span in spans:
            assert span.parent_id == 0 or span.parent_id in by_id
            assert not span.open
        for visit in (s for s in spans if s.name == "visit"):
            assert by_id[visit.parent_id].name == "crawl"
        for attempt in (s for s in spans if s.name == "attempt"):
            assert by_id[attempt.parent_id].name == "visit"
        for command in (s for s in spans if s.name.startswith("webdriver.")):
            assert by_id[command.parent_id].name == "attempt"

    def test_null_tracer_crawl_produces_identical_records(self):
        population = tiny_population()
        traced = make_supervisor(population)
        res_traced = traced.crawl(population)
        untraced_sup = CrawlSupervisor(
            OpenWPMCrawler("obs", instances=2, seed=7),
            config=SupervisorConfig(),
            plan=FaultPlan.generate(population, 2, rate=0.2, seed=5),
            tracer=NULL_TRACER,
        )
        res_untraced = untraced_sup.crawl(population)
        assert json.dumps(res_traced.to_dict()) == json.dumps(
            res_untraced.to_dict()
        )
        assert untraced_sup.tracer.spans == []


class TestPercentiles:
    """Satellite: p50/p95 derivable from fixed buckets alone."""

    def aggregate(self, durations):
        from repro.obs.report import SpanAggregate

        aggregate = SpanAggregate()
        for duration in durations:
            aggregate.add(duration)
        return aggregate

    def test_span_aggregate_bucketed_percentiles(self):
        # 9 fast attempts and 1 slow one: p50 in the 10ms bucket,
        # p95 pulled to the slow tail.
        aggregate = self.aggregate([8.0] * 9 + [450.0])
        assert aggregate.p50_ms == 10.0
        # the 500ms bucket bound, clamped to the exact max observed
        assert aggregate.p95_ms == 450.0

    def test_span_aggregate_overflow_reports_exact_max(self):
        aggregate = self.aggregate([500_000.0])
        assert aggregate.p50_ms == 500_000.0
        assert aggregate.p95_ms == 500_000.0

    def test_span_aggregate_small_sample_clamps_to_max(self):
        # one 3ms observation: its bucket bound is 5ms but the aggregate
        # knows nothing exceeded 3ms.
        aggregate = self.aggregate([3.0])
        assert aggregate.p50_ms == 3.0

    def test_span_aggregate_empty_and_invalid_q(self):
        aggregate = self.aggregate([])
        assert aggregate.p50_ms == 0.0
        with pytest.raises(ValueError):
            aggregate.percentile(0.0)
        with pytest.raises(ValueError):
            aggregate.percentile(1.5)

    def test_span_aggregate_to_dict_includes_percentiles(self):
        data = self.aggregate([8.0] * 9 + [450.0]).to_dict()
        assert data["p50_ms"] == 10.0
        assert data["p95_ms"] == 450.0
        assert set(data) == {"count", "total_ms", "max_ms", "p50_ms", "p95_ms"}

    def test_histogram_percentile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in [8.0] * 9 + [450.0]:
            histogram.observe(value)
        # interpolated within the (5, 10] bucket: rank 5 of the 9
        # observations there -> 5 + 5 * (5 / 9)
        assert histogram.percentile(0.50) == 5.0 + 5.0 * (5.0 / 9.0)
        # rank 9.5 lands half-way into the single-count (100, 500] bucket
        assert histogram.percentile(0.95) == 300.0
        assert histogram.percentile(1.0) == 500.0

    def test_histogram_percentile_interpolates_within_bucket(self):
        # 4 observations in the (10, 50] bucket: quartile ranks split the
        # bucket span linearly instead of all reporting the upper bound.
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in [20.0, 30.0, 40.0, 50.0]:
            histogram.observe(value)
        assert histogram.percentile(0.25) == 20.0
        assert histogram.percentile(0.50) == 30.0
        assert histogram.percentile(0.75) == 40.0
        assert histogram.percentile(1.00) == 50.0

    def test_histogram_percentile_overflow_reports_last_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        histogram.observe(999_999.0)
        assert histogram.percentile(0.5) == 120_000.0

    def test_histogram_percentile_empty_and_invalid_q(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(0.0)

    def test_report_text_shows_percentiles(self):
        population = tiny_population()
        sup = make_supervisor(population)
        sup.crawl(population)
        report = sup.report()
        text = report.render_text()
        assert "p50" in text and "p95" in text
        data = json.loads(report.render_json())
        visit = data["span_totals"]["visit"]
        assert visit["p50_ms"] > 0.0
        assert visit["p95_ms"] >= visit["p50_ms"]

    def test_report_histogram_summaries(self):
        population = tiny_population()
        sup = make_supervisor(population)
        sup.crawl(population)
        report = sup.report()
        summaries = report.histogram_summaries()
        assert summaries  # supervisor always feeds latency histograms
        for summary in summaries.values():
            assert set(summary) == {"count", "mean", "p50", "p95"}
        assert "metric histograms" in report.render_text()
        assert json.loads(report.render_json())["histogram_summaries"] == {
            name: summary for name, summary in summaries.items()
        }


class TestTopN:
    """Satellite: ``report --top N`` slowest sites / failure reasons."""

    def crawled(self, fault_rate=0.6):
        population = tiny_population(n=12)
        sup = make_supervisor(population, fault_rate=fault_rate, max_attempts=1)
        sup.crawl(population)
        return sup

    def test_build_report_top_sites(self):
        sup = self.crawled()
        report = build_report(sup.tracer.spans, top=3)
        assert 0 < len(report.top_sites) <= 3
        totals = [agg.total_ms for _, agg in report.top_sites]
        assert totals == sorted(totals, reverse=True)
        # the slowest site genuinely is the max over all visit spans
        slowest_domain, slowest = report.top_sites[0]
        visit_totals = {}
        for span in sup.tracer.spans:
            if span.name == "visit":
                domain = span.attrs["domain"]
                visit_totals[domain] = (
                    visit_totals.get(domain, 0.0) + span.duration_ms
                )
        assert slowest.total_ms == max(visit_totals.values())
        assert visit_totals[slowest_domain] == slowest.total_ms

    def test_build_report_top_failure_reasons(self):
        sup = self.crawled()
        report = build_report(sup.tracer.spans, top=100)
        assert sup.stats.failed > 0
        assert report.top_failure_reasons
        counts = [count for _, count in report.top_failure_reasons]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == sup.stats.failed
        truncated = build_report(sup.tracer.spans, top=2)
        assert truncated.top_failure_reasons == report.top_failure_reasons[:2]

    def test_top_zero_disables_ranking(self):
        sup = self.crawled()
        report = build_report(sup.tracer.spans)
        assert report.top_sites == []
        assert report.top_failure_reasons == []
        text = report.render_text()
        assert "slowest sites" not in text

    def test_top_renders_in_text_and_json(self):
        sup = self.crawled()
        report = build_report(sup.tracer.spans, top=3)
        text = report.render_text()
        assert "slowest sites (top 3)" in text
        data = json.loads(report.render_json())
        assert len(data["top_sites"]) == len(report.top_sites)
        assert data["top_failure_reasons"] == [
            list(p) for p in report.top_failure_reasons
        ]

    def test_cli_top_flag(self, tmp_path, capsys):
        population = tiny_population(n=12)
        sup = make_supervisor(population, fault_rate=0.6, max_attempts=1)
        path = tmp_path / "trace.jsonl"
        sup.crawl(population, trace_path=path)
        assert obs_main(["report", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest sites (top 3)" in out
        assert "failure reasons" in out
