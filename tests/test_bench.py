"""repro.obs bench: benchmark history and the perf regression gate.

The acceptance criterion lives here: ``bench check`` passes on the
committed BENCH values against the committed baseline history, and
exits 1 when a 2x slowdown is injected.
"""

import json
from pathlib import Path

import pytest

from repro.obs import (
    BenchError,
    append_history,
    baseline_values,
    check_bench_files,
    check_metrics,
    flatten_bench,
    load_bench_values,
    metric_direction,
    read_history,
)
from repro.obs.bench import DEFAULT_BENCH_FILES, bench_prefix
from repro.obs.cli import main as obs_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_bench(path, data):
    path.write_text(json.dumps(data, sort_keys=True, indent=2) + "\n")
    return path


SAMPLE = {
    "kernel": {
        "speedup": 12.0,
        "scalar_events_per_s": 640_000,
        "target_speedup": 5.0,
        "byte_identical": True,
    },
    "full_lint_s": 2.0,
    "files": 159,
}


class TestFlatten:
    def test_nested_dotted_paths_numbers_only(self):
        flat = flatten_bench(SAMPLE, "hlisa")
        assert flat == {
            "hlisa.kernel.speedup": 12.0,
            "hlisa.kernel.scalar_events_per_s": 640_000.0,
            "hlisa.kernel.target_speedup": 5.0,
            "hlisa.full_lint_s": 2.0,
            "hlisa.files": 159.0,
        }

    def test_bench_prefix(self):
        assert bench_prefix("BENCH_crawl.json") == "crawl"
        assert bench_prefix(Path("/x/BENCH_hlisa.json")) == "hlisa"
        assert bench_prefix("custom.json") == "custom"

    def test_load_bench_values(self, tmp_path):
        path = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        values = load_bench_values([path])
        assert values["hlisa.kernel.speedup"] == 12.0

    def test_load_missing_or_corrupt_file(self, tmp_path):
        with pytest.raises(BenchError):
            load_bench_values([tmp_path / "BENCH_none.json"])
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{nope")
        with pytest.raises(BenchError):
            load_bench_values([bad])


class TestDirections:
    @pytest.mark.parametrize(
        ("metric", "direction"),
        [
            ("hlisa.hlisa_motor.kernel.speedup", "higher"),
            ("hlisa.hlisa_motor.kernel.vectorized_events_per_s", "higher"),
            ("crawl.shard_scaling.wall_ms_per_1k_visits.jobs2", "lower"),
            ("lint.full_lint_s", "lower"),
            ("lint.whole_program_pass_s", "lower"),
            ("hlisa.hlisa_motor.kernel.target_speedup", None),
            ("crawl.shard_scaling.sites", None),
            ("lint.files", None),
            ("lint.budget_ratio", None),
        ],
    )
    def test_name_based_rules(self, metric, direction):
        assert metric_direction(metric) == direction

    def test_every_committed_metric_classifies_without_error(self):
        values = load_bench_values(
            [REPO_ROOT / name for name in DEFAULT_BENCH_FILES]
        )
        assert len(values) > 20
        gated = [m for m in values if metric_direction(m) is not None]
        assert gated  # the gate must actually guard something


class TestHistory:
    def test_append_assigns_one_seq_per_batch(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        history = tmp_path / "BENCH_HISTORY.jsonl"
        first = append_history(history, [bench], kind="baseline")
        second = append_history(history, [bench], label="rerun")
        assert {r["seq"] for r in first} == {1}
        assert {r["seq"] for r in second} == {2}
        records = read_history(history)
        assert len(records) == len(first) + len(second)
        assert records[0]["kind"] == "baseline"
        assert records[-1]["label"] == "rerun"
        assert records[0]["source"] == "BENCH_hlisa.json"

    def test_append_rejects_unknown_kind(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        with pytest.raises(BenchError):
            append_history(tmp_path / "h.jsonl", [bench], kind="golden")

    def test_history_lines_are_canonical_json(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        history = tmp_path / "h.jsonl"
        append_history(history, [bench], kind="baseline")
        for line in history.read_text().splitlines():
            data = json.loads(line)
            assert line == json.dumps(
                data, sort_keys=True, separators=(",", ":")
            )

    def test_missing_history_reads_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_history_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"kind": "baseline"}\nnot json\n')
        with pytest.raises(BenchError):
            read_history(path)

    def test_last_baseline_wins(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", dict(SAMPLE))
        history = tmp_path / "h.jsonl"
        append_history(history, [bench], kind="baseline")
        rebased = dict(SAMPLE, full_lint_s=1.5)
        write_bench(bench, rebased)
        append_history(history, [bench], kind="baseline")
        baselines = baseline_values(read_history(history))
        assert baselines["hlisa.full_lint_s"] == 1.5
        # samples never move the baseline
        write_bench(bench, dict(SAMPLE, full_lint_s=9.9))
        append_history(history, [bench], kind="sample")
        baselines = baseline_values(read_history(history))
        assert baselines["hlisa.full_lint_s"] == 1.5


class TestGate:
    def test_within_tolerance_passes(self):
        result = check_metrics(
            {"a.speedup": 9.0}, {"a.speedup": 10.0}, tolerance=0.15
        )
        assert result.passed
        assert result.checked[0].regression == pytest.approx(0.1)

    def test_beyond_tolerance_fails(self):
        result = check_metrics(
            {"a.speedup": 5.0}, {"a.speedup": 10.0}, tolerance=0.15
        )
        assert not result.passed
        assert result.failures[0].metric == "a.speedup"
        assert result.failures[0].regression == pytest.approx(0.5)

    def test_lower_is_better_direction(self):
        result = check_metrics(
            {"a.full_lint_s": 4.0}, {"a.full_lint_s": 2.0}, tolerance=0.15
        )
        assert not result.passed
        assert result.failures[0].regression == pytest.approx(1.0)

    def test_improvement_clamps_to_zero(self):
        result = check_metrics(
            {"a.speedup": 20.0, "b.full_lint_s": 1.0},
            {"a.speedup": 10.0, "b.full_lint_s": 2.0},
        )
        assert result.passed
        assert all(c.regression == 0.0 for c in result.checked)

    def test_zero_baseline_gates_on_sign(self):
        result = check_metrics(
            {"a.speedup": -1.0}, {"a.speedup": 0.0}, tolerance=0.5
        )
        assert not result.passed
        assert result.failures[0].regression == 1.0

    def test_ungated_unbaselined_and_missing(self):
        result = check_metrics(
            {"a.sites": 10.0, "b.speedup": 3.0},
            {"c.events_per_s": 100.0},
        )
        assert result.passed
        assert result.checked == []
        assert result.unbaselined == ["b.speedup"]
        assert result.missing == ["c.events_per_s"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(BenchError):
            check_metrics({}, {}, tolerance=-0.1)

    def test_committed_bench_values_pass_the_committed_gate(self):
        result = check_bench_files(
            [REPO_ROOT / name for name in DEFAULT_BENCH_FILES],
            history_path=REPO_ROOT / "BENCH_HISTORY.jsonl",
        )
        assert result.passed, result.render_text()
        assert result.checked and not result.unbaselined

    def test_missing_history_is_an_error(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        with pytest.raises(BenchError):
            check_bench_files([bench], history_path=tmp_path / "none.jsonl")


class TestBenchCli:
    def record_baseline(self, tmp_path):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        history = tmp_path / "BENCH_HISTORY.jsonl"
        assert (
            obs_main(
                ["bench", "record", str(bench), "--history", str(history),
                 "--baseline"]
            )
            == 0
        )
        return bench, history

    def test_record_then_check_round_trip(self, tmp_path, capsys):
        bench, history = self.record_baseline(tmp_path)
        assert (
            obs_main(["bench", "check", str(bench), "--history", str(history)])
            == 0
        )
        out = capsys.readouterr().out
        assert "verdict: pass" in out

    def test_injected_2x_regression_fails_the_gate(self, tmp_path, capsys):
        bench, history = self.record_baseline(tmp_path)
        slowed = dict(SAMPLE, full_lint_s=SAMPLE["full_lint_s"] * 2.0)
        write_bench(bench, slowed)
        assert (
            obs_main(["bench", "check", str(bench), "--history", str(history)])
            == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "full_lint_s" in out

    def test_injected_2x_regression_against_committed_history(
        self, tmp_path, capsys
    ):
        # the CI self-test in miniature: halve the committed kernel
        # speedup and the committed baseline must catch it
        data = json.loads((REPO_ROOT / "BENCH_hlisa.json").read_text())
        kernel = data["hlisa_motor"]["kernel"]
        kernel["speedup"] = kernel["speedup"] / 2.0
        kernel["vectorized_events_per_s"] = (
            kernel["vectorized_events_per_s"] / 2.0
        )
        slowed = write_bench(tmp_path / "BENCH_hlisa.json", data)
        assert (
            obs_main(
                [
                    "bench",
                    "check",
                    str(slowed),
                    "--history",
                    str(REPO_ROOT / "BENCH_HISTORY.jsonl"),
                    "--tolerance",
                    "0.15",
                ]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_json_output(self, tmp_path):
        bench, history = self.record_baseline(tmp_path)
        out = tmp_path / "check.json"
        assert (
            obs_main(
                [
                    "bench",
                    "check",
                    str(bench),
                    "--history",
                    str(history),
                    "--format",
                    "json",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        data = json.loads(out.read_text())
        assert data["passed"] is True
        assert data["tolerance"] == 0.15

    def test_check_without_history_exits_2(self, tmp_path, capsys):
        bench = write_bench(tmp_path / "BENCH_hlisa.json", SAMPLE)
        assert (
            obs_main(
                ["bench", "check", str(bench), "--history",
                 str(tmp_path / "none.jsonl")]
            )
            == 2
        )
        assert "no benchmark history" in capsys.readouterr().err

    def test_no_bench_files_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert obs_main(["bench", "check"]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err
