"""Window: coordinates, scrolling bounds, visibility."""

import pytest

from repro.browser.window import Window
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.geometry import Point


def make_window(page_height=3000.0, page_width=1366.0):
    return Window(Document(page_width, page_height))


class TestCoordinates:
    def test_client_page_round_trip(self):
        window = make_window()
        window.scroll_y = 500.0
        window.scroll_x = 20.0
        point = Point(100, 200)
        assert window.page_to_client(window.client_to_page(point)) == point

    def test_client_to_page_adds_scroll(self):
        window = make_window()
        window.scroll_y = 300.0
        assert window.client_to_page(Point(10, 10)) == Point(10, 310)

    def test_in_viewport(self):
        window = make_window()
        assert window.is_in_viewport(Point(100, 100))
        assert not window.is_in_viewport(Point(100, 1000))
        window.scroll_y = 800.0
        assert window.is_in_viewport(Point(100, 1000))


class TestScrolling:
    def test_max_scroll(self):
        window = make_window(page_height=3000)
        assert window.max_scroll_y == 3000 - window.viewport_height
        assert window.max_scroll_x == 0.0

    def test_page_smaller_than_viewport(self):
        window = make_window(page_height=400)
        assert window.max_scroll_y == 0.0
        assert not window.scroll_by(0, 100)

    def test_scroll_event_only_on_change(self):
        window = make_window()
        recorder = EventRecorder(("scroll",)).attach(window)
        assert window.scroll_by(0, 100)
        assert not window.scroll_by(0, 0)
        window.scroll_to(0, window.max_scroll_y)
        assert not window.scroll_by(0, 50)  # already at the bottom
        assert len(recorder.events) == 2

    def test_scroll_event_carries_offset(self):
        window = make_window()
        recorder = EventRecorder(("scroll",)).attach(window)
        window.scroll_by(0, 250)
        assert recorder.events[0].page_y == 250.0

    def test_negative_scroll_clamped_at_top(self):
        window = make_window()
        window.scroll_by(0, -500)
        assert window.scroll_y == 0.0


class TestVisibility:
    def test_visibility_round_trip(self):
        window = make_window()
        window.set_visibility("hidden")
        assert not window.has_focus
        window.set_visibility("visible")
        assert window.has_focus
        assert window.document.visibility_state == "visible"

    def test_navigator_attached(self):
        window = make_window()
        assert window.navigator.get("userAgent")
