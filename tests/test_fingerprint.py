"""Table 1: spoofing methods and their detectable side effects.

The core claim of Section 3.1, reproduced mechanically: each spoofing
method hides ``navigator.webdriver``, none is side-effect free, and each
leaves exactly the side effects of its Table 1 row.
"""

import pytest

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.fingerprint import (
    SideEffect,
    TemplateAttack,
    probe_function_tostring,
    probe_object_keys,
    probe_property_count,
    probe_property_order,
    probe_proto_webdriver,
    probe_webdriver_flag,
    run_all_probes,
)
from repro.spoofing import SpoofingExtension, SpoofingMethod, apply_spoofing
from repro.spoofing.methods import spoof_define_property_unremedied


def automated_window():
    return Window(profile=NavigatorProfile(webdriver=True))


#: Table 1, row by row: method -> expected side effects.
TABLE1 = {
    SpoofingMethod.DEFINE_PROPERTY: {
        SideEffect.INCORRECT_PROPERTY_ORDER,
        SideEffect.MODIFIED_LENGTH,
        SideEffect.NEW_OBJECT_KEYS,
    },
    SpoofingMethod.DEFINE_GETTER: {
        SideEffect.INCORRECT_PROPERTY_ORDER,
        SideEffect.MODIFIED_LENGTH,
        SideEffect.NEW_OBJECT_KEYS,
    },
    SpoofingMethod.SET_PROTOTYPE_OF: {SideEffect.PROTO_WEBDRIVER_DEFINED},
    SpoofingMethod.PROXY: {SideEffect.UNNAMED_FUNCTIONS},
}


class TestBaseline:
    def test_automated_browser_exposes_webdriver(self):
        window = automated_window()
        assert probe_webdriver_flag(window) is True

    def test_human_browser_reports_false(self):
        window = Window(profile=NavigatorProfile(webdriver=False))
        assert probe_webdriver_flag(window) is False

    def test_pristine_navigator_has_no_side_effects(self):
        result = run_all_probes(automated_window())
        assert result.side_effects == set()
        assert result.webdriver_visible
        assert result.bot_suspected  # via the flag, not via spoofing


class TestTable1:
    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_every_method_hides_webdriver(self, method):
        window = automated_window()
        apply_spoofing(window, method)
        assert probe_webdriver_flag(window) is False

    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_side_effects_match_table1_exactly(self, method):
        window = automated_window()
        apply_spoofing(window, method)
        result = run_all_probes(window)
        assert result.side_effects == TABLE1[method]

    @pytest.mark.parametrize("method", list(SpoofingMethod))
    def test_no_method_is_side_effect_free(self, method):
        """Section 3.1: 'none of the previously applied methods was
        side-effect free in our measurement.'"""
        window = automated_window()
        apply_spoofing(window, method)
        assert run_all_probes(window).spoofing_detected

    def test_unremedied_define_property_vanishes_from_enumeration(self):
        """Section 3.1: with defineProperty's default flags, webdriver
        'disappears from the listing'."""
        from repro.jsobject import for_in_names

        window = automated_window()
        assert "webdriver" in for_in_names(window.navigator)
        spoof_define_property_unremedied(window)
        assert "webdriver" not in for_in_names(window.navigator)

    def test_proxy_preserves_keys_and_order(self):
        """Why the paper selects the proxy method."""
        window = automated_window()
        apply_spoofing(window, SpoofingMethod.PROXY)
        assert not probe_property_order(window)
        assert not probe_property_count(window)
        assert not probe_object_keys(window)
        assert not probe_proto_webdriver(window)
        assert probe_function_tostring(window)  # the single residue

    def test_set_prototype_preserves_order_and_count(self):
        window = automated_window()
        apply_spoofing(window, SpoofingMethod.SET_PROTOTYPE_OF)
        assert not probe_property_order(window)
        assert not probe_property_count(window)
        assert not probe_function_tostring(window)
        assert probe_proto_webdriver(window)

    def test_other_navigator_values_unaffected(self):
        profile = NavigatorProfile(webdriver=True)
        for method in SpoofingMethod:
            window = Window(profile=profile)
            apply_spoofing(window, method)
            assert window.navigator.get("userAgent") == profile.user_agent
            assert window.navigator.get("platform") == profile.platform


class TestTemplateAttack:
    def test_clean_navigator_no_diff(self):
        attack = TemplateAttack()
        assert not attack.detects(automated_window().navigator)

    @pytest.mark.parametrize(
        "method",
        [SpoofingMethod.DEFINE_PROPERTY, SpoofingMethod.DEFINE_GETTER],
    )
    def test_own_property_spoofs_found(self, method):
        attack = TemplateAttack()
        window = automated_window()
        apply_spoofing(window, method)
        assert attack.detects(window.navigator)

    def test_diff_names_the_change(self):
        attack = TemplateAttack()
        window = automated_window()
        apply_spoofing(window, SpoofingMethod.DEFINE_PROPERTY)
        differences = attack.diff(window.navigator)
        assert any("own properties" in d for d in differences)

    def test_proxy_invisible_to_structural_template(self):
        """The paper's argument for the proxy: a structural template diff
        cannot see it (only the toString probe can)."""
        attack = TemplateAttack()
        window = automated_window()
        apply_spoofing(window, SpoofingMethod.PROXY)
        structural = [
            d for d in attack.diff(window.navigator) if "type changed" not in d
        ]
        assert structural == []


class TestExtension:
    def test_extension_defaults_to_proxy(self):
        extension = SpoofingExtension()
        assert extension.method is SpoofingMethod.PROXY

    def test_inject_hides_webdriver(self):
        window = automated_window()
        SpoofingExtension().inject(window)
        assert probe_webdriver_flag(window) is False

    def test_inject_twice_is_stable(self):
        window = automated_window()
        extension = SpoofingExtension()
        extension.inject(window)
        extension.inject(window)
        assert probe_webdriver_flag(window) is False
        assert run_all_probes(window).side_effects == {SideEffect.UNNAMED_FUNCTIONS}
