"""Detection-framework plumbing: verdicts, batteries, base classes."""

import pytest

from repro.detection import DetectorBattery, DetectionLevel
from repro.detection.base import Detector, Verdict
from repro.events.recorder import EventRecorder
from repro.experiment import BrowsingScenario, SeleniumAgent


class TestVerdict:
    def test_truthiness_follows_is_bot(self):
        assert Verdict("d", is_bot=True)
        assert not Verdict("d", is_bot=False)

    def test_bot_helper_clamps_score(self):
        class Dummy(Detector):
            name = "dummy"

            def observe(self, recorder):
                return self._bot(7.5, "reason")

        verdict = Dummy().observe(EventRecorder())
        assert verdict.score == 1.0
        assert verdict.reasons == ["reason"]

    def test_human_helper(self):
        class Dummy(Detector):
            def observe(self, recorder):
                return self._human()

        verdict = Dummy().observe(EventRecorder())
        assert not verdict.is_bot
        assert verdict.score == 0.0

    def test_base_observe_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Detector().observe(EventRecorder())


class TestBatteryLevels:
    def test_levels_ordered(self):
        assert (
            DetectionLevel.ARTIFICIAL
            < DetectionLevel.DEVIATION
            < DetectionLevel.CONSISTENCY
            < DetectionLevel.PROFILE
        )

    def test_profile_battery_without_detector_skips_level4(self):
        battery = DetectorBattery(DetectionLevel.PROFILE, profile_detector=None)
        levels = {d.level for d in battery.detectors}
        assert DetectionLevel.PROFILE not in levels
        assert DetectionLevel.CONSISTENCY in levels

    def test_evaluate_only_level_restricts(self):
        recorder = BrowsingScenario(clicks=5).run(SeleniumAgent()).recorder
        battery = DetectorBattery(DetectionLevel.DEVIATION)
        report = battery.evaluate_only_level(recorder)
        assert all(
            v.detector
            in {d.name for d in battery.detectors if d.level == DetectionLevel.DEVIATION}
            for v in report.verdicts
        )

    def test_report_str_renders(self):
        recorder = BrowsingScenario(clicks=5).run(SeleniumAgent()).recorder
        report = DetectorBattery(DetectionLevel.ARTIFICIAL).evaluate(recorder)
        rendering = str(report)
        assert "level 1" in rendering
        assert "BOT" in rendering

    def test_empty_recording_is_human_everywhere(self):
        """No interaction, no verdict -- a page with nothing recorded
        cannot condemn anyone."""
        report = DetectorBattery(DetectionLevel.CONSISTENCY).evaluate(EventRecorder())
        assert not report.is_bot
