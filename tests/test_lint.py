"""The invariant linter: rules, suppressions, baseline, drivers, CLI."""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.lint import (
    Baseline,
    Finding,
    PARSE_ERROR_RULE,
    all_rules,
    fingerprint_findings,
    lint_file,
    parse_source,
    path_scopes,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.baseline import fingerprint
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(source: str, path: str = "snippet.py"):
    """Rule findings for an in-memory snippet (suppressions applied)."""
    ctx = parse_source(dedent(source), path)
    findings = []
    for rule in all_rules():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def rule_ids(source: str, path: str = "snippet.py"):
    return [f.rule for f in lint_source(source, path)]


# -- DET: determinism ------------------------------------------------------


class TestWallClock:
    def test_time_time_flagged(self):
        ids = rule_ids(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert ids == ["DET001"]

    def test_perf_counter_and_alias_flagged(self):
        ids = rule_ids(
            """
            import time as t

            def tick():
                return t.perf_counter()
            """
        )
        assert ids == ["DET001"]

    def test_virtual_clock_is_clean(self):
        assert rule_ids(
            """
            def stamp(clock):
                return clock.event_timestamp()
            """
        ) == []


class TestDatetimeNow:
    def test_from_import_now(self):
        ids = rule_ids(
            """
            from datetime import datetime

            def today():
                return datetime.now()
            """
        )
        assert ids == ["DET002"]

    def test_constructing_a_datetime_is_clean(self):
        assert rule_ids(
            """
            from datetime import datetime

            EPOCH = datetime(2021, 11, 2)
            """
        ) == []


class TestGlobalRandom:
    def test_module_level_functions(self):
        ids = rule_ids(
            """
            import random

            def roll():
                return random.randint(1, 6)
            """
        )
        assert ids == ["DET003"]

    def test_from_import_function(self):
        ids = rule_ids(
            """
            from random import choice

            def pick(xs):
                return choice(xs)
            """
        )
        assert ids == ["DET003"]

    def test_argless_random_flagged_seeded_clean(self):
        source = """
            import random

            UNSEEDED = random.Random()
            SEEDED = random.Random(42)
            """
        assert rule_ids(source) == ["DET003"]

    def test_methods_on_seeded_instance_are_clean(self):
        assert rule_ids(
            """
            def draw(rng):
                return rng.random() + rng.uniform(0, 1)
            """
        ) == []


class TestNumpyGlobalRandom:
    def test_np_random_seed(self):
        ids = rule_ids(
            """
            import numpy as np

            np.random.seed(0)
            X = np.random.rand(3)
            """
        )
        assert ids == ["DET004", "DET004"]

    def test_default_rng_is_clean(self):
        assert rule_ids(
            """
            import numpy as np

            RNG = np.random.default_rng(7)
            """
        ) == []


class TestUnsortedSetIteration:
    def test_for_loop_over_set(self):
        ids = rule_ids(
            """
            def names(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """
        )
        assert ids == ["DET005"]

    def test_list_comprehension_over_set(self):
        assert rule_ids("xs = [x for x in set(range(3))]") == ["DET005"]

    def test_dict_comprehension_over_set_is_flagged(self):
        # dicts preserve insertion order straight into JSON output.
        assert rule_ids("d = {k: 1 for k in {'a', 'b'}}") == ["DET005"]

    def test_list_of_set_flagged(self):
        assert rule_ids("xs = list(set(ys))") == ["DET005"]

    def test_sorted_wrapping_is_clean(self):
        assert rule_ids("xs = sorted(set(ys))") == []
        assert rule_ids("xs = [x for x in sorted(set(ys))]") == []

    def test_order_erasing_sinks_are_clean(self):
        assert rule_ids("s = {x for x in set(ys)}") == []
        assert rule_ids("s = frozenset(x for x in set(ys))") == []
        assert rule_ids("n = sum(x for x in {1, 2})") == []

    def test_set_union_iteration_flagged(self):
        assert rule_ids("xs = [s for s in set(a) | set(b)]") == ["DET005"]

    def test_membership_tests_are_clean(self):
        assert rule_ids(
            """
            def keep(xs, allowed):
                allowed_set = set(allowed)
                return [x for x in xs if x in allowed_set]
            """
        ) == []


class TestFilesystemOrder:
    def test_listdir_flagged(self):
        ids = rule_ids(
            """
            import os

            def entries(d):
                return os.listdir(d)
            """
        )
        assert ids == ["DET006"]

    def test_rglob_flagged_unless_sorted(self):
        assert rule_ids("files = [p for p in base.rglob('*.py')]") == ["DET006"]
        assert rule_ids("files = sorted(base.rglob('*.py'))") == []


# -- FLT: fault discipline -------------------------------------------------


FAULT_PATH = "webdriver/mod.py"


class TestBroadExcept:
    def test_except_exception_in_scope(self):
        source = """
            def fetch(driver, url):
                try:
                    driver.get(url)
                except Exception:
                    pass
            """
        assert rule_ids(source, FAULT_PATH) == ["FLT001"]

    def test_bare_except_in_scope(self):
        source = """
            def fetch(driver, url):
                try:
                    driver.get(url)
                except:
                    pass
            """
        assert rule_ids(source, FAULT_PATH) == ["FLT001"]

    def test_typed_except_is_clean(self):
        source = """
            from repro.faults.types import FaultError

            def fetch(driver, url):
                try:
                    driver.get(url)
                except FaultError:
                    pass
            """
        assert rule_ids(source, FAULT_PATH) == []

    def test_out_of_scope_path_not_checked(self):
        source = """
            def fetch(driver, url):
                try:
                    driver.get(url)
                except Exception:
                    pass
            """
        assert rule_ids(source, "analysis/mod.py") == []


class TestUntypedHookRaise:
    def test_runtime_error_at_hook_point(self):
        source = """
            def get(self, url):
                raise RuntimeError("boom")
            """
        assert rule_ids(source, FAULT_PATH) == ["FLT002"]

    def test_taxonomy_and_webdriver_errors_allowed(self):
        source = """
            from repro.faults.types import make_fault
            from repro.webdriver.errors import NoSuchElementException

            def find_element(self, by, value):
                raise NoSuchElementException(value)

            def execute_script(self, script):
                raise NotImplementedError(script)
            """
        assert rule_ids(source, FAULT_PATH) == []

    def test_non_hook_function_not_checked(self):
        source = """
            def helper():
                raise RuntimeError("fine here")
            """
        assert rule_ids(source, FAULT_PATH) == []

    def test_bare_raise_in_broad_handler(self):
        source = """
            def get(self, url):
                try:
                    self._navigate(url)
                except Exception:
                    raise
            """
        assert rule_ids(source, FAULT_PATH) == ["FLT001", "FLT002"]


class TestRetryWithoutBackoff:
    def test_retry_continue_without_backoff(self):
        source = """
            def crawl(self, sites):
                for attempt in range(4):
                    try:
                        return self._visit()
                    except OSError:
                        continue
            """
        assert rule_ids(source, "crawl/mod.py") == ["FLT003"]

    def test_backoff_call_makes_it_clean(self):
        source = """
            def crawl(self, sites):
                for attempt in range(4):
                    try:
                        return self._visit()
                    except OSError:
                        self._backoff(attempt)
                        continue
            """
        assert rule_ids(source, "crawl/mod.py") == []


class TestHandlerDiscipline:
    def test_swallowing_handler_flagged(self):
        source = """
            def on_page_stalled(self, event):
                try:
                    event.resolve("stall", "aborted")
                except Exception:
                    pass
            """
        assert rule_ids(source, "bus/mod.py") == ["FLT004"]

    def test_bare_except_swallow_flagged(self):
        source = """
            def on_fault_observed(self, event):
                try:
                    event.instance.note_fault()
                except:
                    return
            """
        assert rule_ids(source, "bus/mod.py") == ["FLT004"]

    def test_untyped_raise_from_handler_flagged(self):
        source = """
            def on_overlay_detected(self, event):
                raise RuntimeError("boom")
            """
        assert rule_ids(source, "bus/mod.py") == ["FLT004"]

    def test_reraise_and_typed_errors_are_clean(self):
        source = """
            from repro.faults.types import BrowserCrashError

            def on_overlay_detected(self, event):
                try:
                    event.dismiss()
                except Exception:
                    self.note("dismiss_failed")
                    raise

            def on_fault_observed(self, event):
                if event.instance is None:
                    raise ValueError("detached event")
                raise BrowserCrashError(event.domain)
            """
        assert rule_ids(source, "bus/mod.py") == []

    def test_non_handler_function_not_checked(self):
        source = """
            def replay(self, event):
                try:
                    event.dismiss()
                except Exception:
                    pass
            """
        assert rule_ids(source, "bus/mod.py") == []

    def test_out_of_scope_path_not_checked(self):
        source = """
            def on_page_stalled(self, event):
                raise RuntimeError("boom")
            """
        assert rule_ids(source, "analysis/mod.py") == []

    def test_watchdogs_dir_gets_fault_and_bus_scopes(self):
        # crawl/watchdogs/ is in both the faults scope (crawl/) and the
        # bus scope (watchdogs/): a swallowing handler trips FLT001 AND
        # FLT004 there.
        source = """
            def on_page_stalled(self, event):
                try:
                    event.resolve("stall", "aborted")
                except Exception:
                    pass
            """
        assert rule_ids(source, "crawl/watchdogs/mod.py") == [
            "FLT001",
            "FLT004",
        ]


# -- EVT: event protocol ---------------------------------------------------


EVENT_PATH = "tools/mod.py"


class TestDirectDispatch:
    def test_dispatch_event_in_scope(self):
        source = """
            def click(element, event):
                element.dispatch_event(event)
            """
        assert rule_ids(source, EVENT_PATH) == ["EVT001"]

    def test_pipeline_calls_are_clean(self):
        source = """
            def click(session):
                session.pipeline.move_mouse_to(10, 20)
                session.pipeline.mouse_down()
                session.pipeline.mouse_up()
            """
        assert rule_ids(source, EVENT_PATH) == []

    def test_out_of_scope_dispatch_allowed(self):
        # The pipeline layer itself legitimately dispatches DOM events.
        source = """
            def emit(element, event):
                element.dispatch_event(event)
            """
        assert rule_ids(source, "browser/mod.py") == []


class TestPressWithoutMove:
    def test_mouse_down_without_move(self):
        source = """
            def click(session):
                session.pipeline.mouse_down()
                session.pipeline.mouse_up()
            """
        assert rule_ids(source, EVENT_PATH) == ["EVT002"]

    def test_move_before_press_is_clean(self):
        source = """
            def click(self, session, element):
                self.move_to_element(session, element)
                session.pipeline.mouse_down()
                session.pipeline.mouse_up()
            """
        assert rule_ids(source, EVENT_PATH) == []

    def test_literal_mousedown_without_mousemove(self):
        source = """
            def click(emit):
                emit("mousedown")
            """
        assert rule_ids(source, EVENT_PATH) == ["EVT002"]

    def test_literal_protocol_order_is_clean(self):
        source = """
            def click(emit):
                emit("mousemove")
                emit("mousedown")
                emit("mouseup")
            """
        assert rule_ids(source, EVENT_PATH) == []


class TestHardcodedTimestamp:
    def test_timestamp_keyword_literal(self):
        source = """
            def make(Event):
                return Event("click", timestamp=123.0)
            """
        assert rule_ids(source) == ["EVT003"]

    def test_timestamp_attribute_assignment(self):
        source = """
            def stamp(event):
                event.timestamp = 5
            """
        assert rule_ids(source) == ["EVT003"]

    def test_clock_sourced_timestamp_is_clean(self):
        source = """
            def make(Event, clock):
                return Event("click", timestamp=clock.event_timestamp())
            """
        assert rule_ids(source) == []


# -- PERF ------------------------------------------------------------------


class TestContainerInComprehensionCondition:
    def test_set_in_condition_flagged(self):
        source = "xs = [i for i in items if i not in set(chosen)]"
        assert rule_ids(source) == ["PERF001"]

    def test_dict_literal_in_condition_flagged(self):
        source = "xs = [i for i in items if i in {1: 'a', 2: 'b'}]"
        assert rule_ids(source) == ["PERF001"]

    def test_hoisted_set_is_clean(self):
        source = """
            chosen_set = set(chosen)
            xs = [i for i in items if i not in chosen_set]
            """
        assert rule_ids(source) == []


# -- OBS: observability exports --------------------------------------------


class TestCanonicalJsonExport:
    OBS_PATH = "src/repro/obs/snippet.py"

    def test_dumps_without_sort_keys_flagged(self):
        source = """
            import json

            def render(data):
                return json.dumps(data)
            """
        assert rule_ids(source, path=self.OBS_PATH) == ["OBS001"]

    def test_dump_without_sort_keys_flagged(self):
        source = """
            import json

            def write(data, fh):
                json.dump(data, fh, indent=2)
            """
        assert rule_ids(source, path=self.OBS_PATH) == ["OBS001"]

    def test_sort_keys_false_flagged(self):
        source = """
            import json

            def render(data):
                return json.dumps(data, sort_keys=False)
            """
        assert rule_ids(source, path=self.OBS_PATH) == ["OBS001"]

    def test_canonical_dumps_clean(self):
        source = """
            import json

            def render(data):
                return json.dumps(data, sort_keys=True, separators=(",", ":"))
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_kwargs_passthrough_not_flagged(self):
        source = """
            import json

            def render(data, **kwargs):
                return json.dumps(data, **kwargs)
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_rule_is_scoped_to_obs(self):
        source = """
            import json

            def render(data):
                return json.dumps(data)
            """
        assert rule_ids(source, path="src/repro/stats/snippet.py") == []

    def test_obs_layer_is_clean(self):
        obs_pkg = REPO_ROOT / "src" / "repro" / "obs"
        report = run_lint([obs_pkg], root=REPO_ROOT)
        assert report.new_findings == [], render_text(report)


class TestSpanEndDiscipline:
    OBS_PATH = "src/repro/obs/snippet.py"

    def test_assigned_span_without_finally_flagged(self):
        source = """
            def visit(tracer):
                span = tracer.start("visit")
                do_work()
                tracer.end(span)
            """
        assert rule_ids(source, path=self.OBS_PATH) == ["OBS002"]

    def test_discarded_span_flagged(self):
        source = """
            def visit(tracer):
                tracer.start("visit")
                do_work()
            """
        assert rule_ids(source, path=self.OBS_PATH) == ["OBS002"]

    def test_finally_end_clean(self):
        source = """
            def visit(tracer):
                span = tracer.start("visit")
                try:
                    do_work()
                finally:
                    tracer.end(span)
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_guarded_conditional_span_clean(self):
        # the webdriver idiom: span only when tracing is on, end guarded
        source = """
            def get(self, tracer, url):
                span = tracer.start("get", url=url) if tracer.enabled else None
                try:
                    do_work()
                finally:
                    if span is not None:
                        tracer.end(span)
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_context_manager_clean(self):
        source = """
            def visit(tracer):
                with tracer.span("visit"):
                    do_work()
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_non_tracer_start_not_flagged(self):
        source = """
            def go(thread):
                thread.start()
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_self_tracer_attribute_chain_recognised(self):
        source = """
            class Supervisor:
                def run(self):
                    root = self.tracer.start("crawl")
                    try:
                        do_work()
                    finally:
                        self.tracer.end(root)
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_inline_suppression(self):
        source = """
            def visit(tracer):
                tracer.start("visit")  # repro-lint: disable=OBS002
            """
        assert rule_ids(source, path=self.OBS_PATH) == []

    def test_rule_is_scoped_to_obs(self):
        source = """
            def visit(tracer):
                tracer.start("visit")
            """
        assert rule_ids(source, path="src/repro/stats/snippet.py") == []


# -- suppressions ----------------------------------------------------------


class TestSuppressions:
    def test_inline_disable(self):
        source = """
            import time

            NOW = time.time()  # repro-lint: disable=DET001
            """
        assert rule_ids(source) == []

    def test_disable_all(self):
        source = """
            import time

            NOW = time.time()  # repro-lint: disable=all
            """
        assert rule_ids(source) == []

    def test_disable_other_rule_does_not_suppress(self):
        source = """
            import time

            NOW = time.time()  # repro-lint: disable=DET005
            """
        assert rule_ids(source) == ["DET001"]


# -- baseline --------------------------------------------------------------


def _write_violation(tree: Path, name: str = "mod.py") -> Path:
    target = tree / name
    target.write_text("import time\nNOW = time.time()\n")
    return target


class TestBaseline:
    def test_baselined_finding_does_not_fail(self, tmp_path):
        _write_violation(tmp_path)
        first = run_lint([tmp_path], root=tmp_path)
        assert first.exit_code == 1
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.write(baseline_path, first.all_findings)
        second = run_lint(
            [tmp_path], root=tmp_path, baseline=Baseline.load(baseline_path)
        )
        assert second.exit_code == 0
        assert len(second.baselined) == 1
        assert second.new_findings == []

    def test_fingerprint_survives_line_drift(self, tmp_path):
        target = _write_violation(tmp_path)
        first = run_lint([tmp_path], root=tmp_path)
        Baseline.write(tmp_path / "b.json", first.all_findings)
        # Unrelated lines above shift the finding's line number.
        target.write_text("import time\n\n\nX = 1\nNOW = time.time()\n")
        drifted = run_lint(
            [tmp_path],
            root=tmp_path,
            baseline=Baseline.load(tmp_path / "b.json"),
        )
        assert drifted.new_findings == []
        assert len(drifted.baselined) == 1

    def test_editing_the_line_invalidates_the_entry(self, tmp_path):
        target = _write_violation(tmp_path)
        first = run_lint([tmp_path], root=tmp_path)
        Baseline.write(tmp_path / "b.json", first.all_findings)
        target.write_text("import time\nLATER = time.time()\n")
        edited = run_lint(
            [tmp_path],
            root=tmp_path,
            baseline=Baseline.load(tmp_path / "b.json"),
        )
        assert [f.rule for f in edited.new_findings] == ["DET001"]

    def test_duplicate_lines_get_distinct_fingerprints(self):
        findings = fingerprint_findings(
            [
                Finding("DET001", "m.py", 2, 1, "msg", snippet="t = time.time()"),
                Finding("DET001", "m.py", 5, 1, "msg", snippet="t = time.time()"),
            ]
        )
        assert findings[0].fingerprint != findings[1].fingerprint
        assert findings[0].fingerprint == fingerprint(
            "DET001", "m.py", "t = time.time()", 0
        )


# -- drivers ---------------------------------------------------------------


class TestDrivers:
    def _make_tree(self, tmp_path: Path) -> Path:
        (tmp_path / "webdriver").mkdir()
        (tmp_path / "clean.py").write_text("X = 1\n")
        _write_violation(tmp_path, "det.py")
        (tmp_path / "webdriver" / "hooks.py").write_text(
            "def get(self, url):\n    raise RuntimeError('boom')\n"
        )
        return tmp_path

    def test_parallel_output_byte_identical_to_serial(self, tmp_path):
        tree = self._make_tree(tmp_path)
        serial = run_lint([tree], root=tree, jobs=1)
        parallel = run_lint([tree], root=tree, jobs=4)
        assert render_json(serial) == render_json(parallel)
        assert render_text(serial) == render_text(parallel)
        assert serial.exit_code == parallel.exit_code == 1

    def test_findings_are_sorted_and_relative(self, tmp_path):
        tree = self._make_tree(tmp_path)
        report = run_lint([tree], root=tree)
        keys = [f.sort_key() for f in report.new_findings]
        assert keys == sorted(keys)
        assert all(not Path(f.path).is_absolute() for f in report.new_findings)

    def test_parse_error_reported_as_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        report = run_lint([tmp_path], root=tmp_path)
        assert [f.rule for f in report.new_findings] == [PARSE_ERROR_RULE]
        assert report.exit_code == 1

    def test_lint_file_counts_suppressions(self, tmp_path):
        target = tmp_path / "sup.py"
        target.write_text(
            "import time\nNOW = time.time()  # repro-lint: disable=DET001\n"
        )
        result = lint_file(target, "sup.py")
        assert result.findings == []
        assert result.suppressed == 1


# -- CLI -------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        code = main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_finding_and_json_format(self, tmp_path, capsys):
        _write_violation(tmp_path)
        code = main(
            [str(tmp_path), "--root", str(tmp_path), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET001"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        _write_violation(tmp_path)
        assert main([str(tmp_path), "--root", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        # Default baseline discovery picks the file up on the next run.
        assert main([str(tmp_path), "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_list_rules_covers_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope"), "--root", str(tmp_path)])
        assert excinfo.value.code == 2


# -- scopes and registry ---------------------------------------------------


class TestScopesAndRegistry:
    def test_path_scopes(self):
        assert path_scopes("src/repro/webdriver/driver.py") == {"faults"}
        assert path_scopes("src/repro/tools/pyhm.py") == {"events"}
        assert path_scopes("src/repro/stats/wilcoxon.py") == set()

    def test_rule_ids_unique_and_sorted(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert all(rule.rationale for rule in rules)


# -- self-hosting: the repo itself -----------------------------------------


class TestRepoInvariants:
    def test_linter_is_clean_on_itself(self):
        lint_pkg = REPO_ROOT / "src" / "repro" / "lint"
        report = run_lint([lint_pkg], root=REPO_ROOT)
        assert report.new_findings == [], render_text(report)

    def test_source_tree_has_no_non_baselined_findings(self):
        """Tier-1 ratchet: any new DET/FLT/EVT/PERF violation fails CI."""
        baseline_path = REPO_ROOT / "lint-baseline.json"
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path.exists()
            else Baseline.empty()
        )
        report = run_lint(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT, baseline=baseline
        )
        assert report.new_findings == [], render_text(report)
