"""Object.freeze/seal semantics and the frozen-navigator probe."""

import pytest

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.fingerprint import probe_frozen_navigator
from repro.jsobject import JSObject, JSTypeError, PropertyDescriptor
from repro.spoofing import SpoofingMethod, apply_spoofing


def make_object():
    obj = JSObject()
    obj.set("a", 1)
    obj.define_property("getter", PropertyDescriptor.accessor(get=lambda this: 2))
    return obj


class TestFreeze:
    def test_frozen_rejects_writes(self):
        obj = make_object().freeze()
        with pytest.raises(JSTypeError):
            obj.set("a", 5)

    def test_frozen_rejects_new_properties(self):
        obj = make_object().freeze()
        with pytest.raises(JSTypeError):
            obj.define_property("new", PropertyDescriptor.data(1))

    def test_frozen_rejects_delete(self):
        obj = make_object().freeze()
        assert obj.delete("a") is False
        assert obj.get("a") == 1

    def test_frozen_rejects_prototype_change(self):
        obj = make_object().freeze()
        with pytest.raises(JSTypeError):
            obj.set_prototype_of(JSObject())

    def test_is_frozen(self):
        obj = make_object()
        assert not obj.is_frozen()
        obj.freeze()
        assert obj.is_frozen()

    def test_accessor_survives_freeze(self):
        obj = make_object().freeze()
        assert obj.get("getter") == 2

    def test_frozen_implies_sealed(self):
        obj = make_object().freeze()
        assert obj.is_sealed()


class TestSeal:
    def test_sealed_allows_writes(self):
        obj = make_object().seal()
        obj.set("a", 9)
        assert obj.get("a") == 9

    def test_sealed_rejects_delete_and_new(self):
        obj = make_object().seal()
        assert obj.delete("a") is False
        with pytest.raises(JSTypeError):
            obj.define_property("new", PropertyDescriptor.data(1))

    def test_sealed_not_frozen(self):
        obj = make_object().seal()
        assert obj.is_sealed()
        assert not obj.is_frozen()


class TestFrozenNavigatorProbe:
    def test_stock_navigator_not_frozen(self):
        window = Window(profile=NavigatorProfile(webdriver=True))
        assert not probe_frozen_navigator(window)

    def test_spoofed_methods_leave_navigator_unfrozen(self):
        for method in SpoofingMethod:
            window = Window(profile=NavigatorProfile(webdriver=True))
            apply_spoofing(window, method)
            assert not probe_frozen_navigator(window), method

    def test_overzealous_stealth_script_detected(self):
        """A stealth script freezing its spoofed navigator is a tell."""
        window = Window(profile=NavigatorProfile(webdriver=True))
        apply_spoofing(window, SpoofingMethod.DEFINE_PROPERTY)
        window.navigator.freeze()
        assert probe_frozen_navigator(window)

    def test_probe_sees_through_proxy(self):
        window = Window(profile=NavigatorProfile(webdriver=True))
        target = window.navigator
        target.freeze()
        apply_spoofing(window, SpoofingMethod.PROXY)
        assert probe_frozen_navigator(window)
