"""Property-based tests on the browser substrate (hypothesis).

Invariants a browser must uphold no matter what an agent does: scroll
positions stay within the page, event timestamps never decrease, button
state stays consistent, and a field's value always equals the result of
replaying the keystrokes.
"""

from hypothesis import given, settings, strategies as st

from repro.browser.input_pipeline import InputPipeline
from repro.browser.window import Window
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box

# An abstract "OS input" action.
actions = st.one_of(
    st.tuples(
        st.just("move"),
        st.floats(min_value=-50, max_value=1500, allow_nan=False),
        st.floats(min_value=-50, max_value=900, allow_nan=False),
    ),
    st.tuples(st.just("down"), st.integers(0, 2)),
    st.tuples(st.just("up"), st.integers(0, 2)),
    st.tuples(st.just("wheel"), st.floats(min_value=-300, max_value=300, allow_nan=False)),
    st.tuples(st.just("scroll"), st.floats(min_value=-99999, max_value=99999, allow_nan=False)),
    st.tuples(st.just("key"), st.sampled_from("abcXYZ 123")),
    st.tuples(st.just("advance"), st.floats(min_value=0, max_value=500, allow_nan=False)),
)


def make_rig():
    document = Document(1366, 5000)
    document.create_element("input", Box(100, 100, 300, 40), id="field")
    document.create_element("button", Box(600, 300, 120, 48), id="btn")
    window = Window(document)
    pipeline = InputPipeline(window)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(window)
    return window, pipeline, recorder


def drive(window, pipeline, sequence):
    for action in sequence:
        kind = action[0]
        if kind == "move":
            pipeline.move_mouse_to(action[1], action[2])
        elif kind == "down":
            pipeline.mouse_down(action[1])
        elif kind == "up":
            pipeline.mouse_up(action[1])
        elif kind == "wheel":
            pipeline.wheel(action[1])
        elif kind == "scroll":
            pipeline.scroll_programmatic(0, action[1])
        elif kind == "key":
            pipeline.key_down(action[1])
            window.clock.advance(5)
            pipeline.key_up(action[1])
        elif kind == "advance":
            window.clock.advance(action[1])


@settings(max_examples=60, deadline=None)
@given(st.lists(actions, max_size=40))
def test_scroll_position_always_within_page(sequence):
    window, pipeline, _ = make_rig()
    drive(window, pipeline, sequence)
    assert 0.0 <= window.scroll_y <= window.max_scroll_y
    assert 0.0 <= window.scroll_x <= window.max_scroll_x


@settings(max_examples=60, deadline=None)
@given(st.lists(actions, max_size=40))
def test_event_timestamps_never_decrease(sequence):
    window, pipeline, recorder = make_rig()
    drive(window, pipeline, sequence)
    stamps = [e.timestamp for e in recorder.events]
    assert stamps == sorted(stamps)


@settings(max_examples=60, deadline=None)
@given(st.lists(actions, max_size=40))
def test_every_click_has_matching_down_and_up(sequence):
    window, pipeline, recorder = make_rig()
    drive(window, pipeline, sequence)
    for click in recorder.of_type("click"):
        downs = [
            e
            for e in recorder.of_type("mousedown")
            if e.timestamp <= click.timestamp and e.button == 0
        ]
        ups = [
            e
            for e in recorder.of_type("mouseup")
            if e.timestamp <= click.timestamp and e.button == 0
        ]
        assert downs and ups


@settings(max_examples=60, deadline=None)
@given(st.lists(actions, max_size=40))
def test_buttons_mask_consistent(sequence):
    """The buttons bitmask on events reflects held buttons at all times."""
    window, pipeline, recorder = make_rig()
    drive(window, pipeline, sequence)
    # After draining the sequence, release everything; the mask must hit 0.
    for button in (0, 1, 2):
        pipeline.mouse_up(button)
    assert pipeline._buttons_mask == 0


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="abc XYZ123", max_size=30))
def test_typed_value_equals_replayed_keystrokes(text):
    window, pipeline, _ = make_rig()
    field = window.document.get_element_by_id("field")
    window.document.set_focus(field)
    for char in text:
        pipeline.key_down(char)
        window.clock.advance(5)
        pipeline.key_up(char)
        window.clock.advance(5)
    assert field.value == text


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-500, max_value=500, allow_nan=False), max_size=25
    )
)
def test_wheel_total_matches_scroll_position(deltas):
    """Sum of effective wheel scrolling equals the final scroll offset."""
    window, pipeline, recorder = make_rig()
    for delta in deltas:
        pipeline.wheel(delta)
        window.clock.advance(30)
    offsets = [e.page_y for e in recorder.scroll_events()]
    if offsets:
        assert offsets[-1] == window.scroll_y
    else:
        assert window.scroll_y == 0.0
