"""The behavioural-detector crawl (the paper's future-work evaluation)."""

import pytest

from repro.crawl.behavioral import (
    BehavioralSite,
    make_behavioral_population,
    run_behavioral_crawl,
)
from repro.detection.base import DetectionLevel
from repro.experiment import BrowsingScenario
from repro.experiment.agents import HLISAAgent, SeleniumAgent


class TestPopulation:
    def test_sites_per_level(self):
        population = make_behavioral_population(sites_per_level=2)
        assert len(population) == 6
        levels = [site.detector_level for site in population]
        assert levels.count(DetectionLevel.ARTIFICIAL) == 2
        assert levels.count(DetectionLevel.CONSISTENCY) == 2

    def test_site_judges_with_its_battery(self):
        site = BehavioralSite("x.example", DetectionLevel.ARTIFICIAL)
        recorder = BrowsingScenario(clicks=10).run(SeleniumAgent()).recorder
        assert site.judges(recorder)


class TestCrawl:
    @pytest.fixture(scope="class")
    def result(self):
        agents = {"selenium": SeleniumAgent(), "hlisa": HLISAAgent()}
        population = make_behavioral_population(sites_per_level=1)
        return run_behavioral_crawl(agents, population, visits_per_site=1)

    def test_selenium_blocked_everywhere(self, result):
        for level in (
            DetectionLevel.ARTIFICIAL,
            DetectionLevel.DEVIATION,
            DetectionLevel.CONSISTENCY,
        ):
            assert result.blocked_rate("selenium", level) == 1.0

    def test_hlisa_blocked_only_at_consistency(self, result):
        assert result.blocked_rate("hlisa", DetectionLevel.ARTIFICIAL) == 0.0
        assert result.blocked_rate("hlisa", DetectionLevel.DEVIATION) == 0.0
        assert result.blocked_rate("hlisa", DetectionLevel.CONSISTENCY) == 1.0

    def test_format_table(self, result):
        rendering = result.format_table()
        assert "selenium" in rendering
        assert "L1 sites" in rendering
