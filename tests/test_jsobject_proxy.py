"""Proxy semantics (spoofing method 4's substrate)."""

import pytest

from repro.jsobject import (
    JSObject,
    JSProxy,
    JSTypeError,
    NativeFunction,
    PropertyDescriptor,
    is_proxy,
    object_keys,
)
from repro.jsobject.proxy import make_stealth_get_trap


def make_target():
    target = JSObject(js_class="Widget")
    target.set("plain", 1)
    target.define_property(
        "fn",
        PropertyDescriptor.data(
            NativeFunction(lambda this: "called", name="fn", brand="Widget")
        ),
    )
    return target


class TestForwarding:
    def test_get_forwards_by_default(self):
        proxy = JSProxy(make_target())
        assert proxy.get("plain") == 1

    def test_set_forwards_by_default(self):
        target = make_target()
        proxy = JSProxy(target)
        proxy.set("plain", 5)
        assert target.get("plain") == 5

    def test_has_forwards(self):
        proxy = JSProxy(make_target())
        assert proxy.has("plain")
        assert not proxy.has("ghost")

    def test_own_keys_forward(self):
        target = make_target()
        proxy = JSProxy(target)
        assert proxy.own_property_names() == target.own_property_names()
        assert object_keys(proxy) == object_keys(target)

    def test_proto_forwards(self):
        proto = JSObject()
        target = JSObject(proto=proto)
        assert JSProxy(target).proto is proto

    def test_js_class_forwards(self):
        assert JSProxy(make_target()).js_class == "Widget"

    def test_delete_forwards(self):
        target = make_target()
        proxy = JSProxy(target)
        assert proxy.delete("plain") is True
        assert not target.has_own("plain")

    def test_non_object_target_rejected(self):
        with pytest.raises(JSTypeError):
            JSProxy("not-an-object")


class TestTraps:
    def test_get_trap_overrides(self):
        proxy = JSProxy(make_target(), {"get": lambda t, n, r: "trapped"})
        assert proxy.get("anything") == "trapped"

    def test_own_keys_trap(self):
        proxy = JSProxy(make_target(), {"ownKeys": lambda t: ["fake"]})
        assert proxy.own_property_names() == ["fake"]

    def test_has_trap(self):
        proxy = JSProxy(make_target(), {"has": lambda t, n: n == "yes"})
        assert proxy.has("yes")
        assert not proxy.has("plain")


class TestBrandChecks:
    def test_raw_method_call_through_proxy_fails_brand_check(self):
        """A platform method invoked with the proxy as ``this`` throws --
        why stealth proxies must bind methods to the target."""
        target = make_target()
        proxy = JSProxy(target)
        fn = target.get("fn")
        with pytest.raises(JSTypeError):
            fn.call(proxy)

    def test_stealth_trap_binds_methods(self):
        target = make_target()
        proxy = JSProxy(target, {"get": make_stealth_get_trap({})})
        wrapped = proxy.get("fn")
        assert wrapped.call(proxy) == "called"  # bound: brand check passes

    def test_stealth_wrapper_is_anonymous(self):
        """Listing 1: the wrapper's toString lost the function name."""
        target = make_target()
        proxy = JSProxy(target, {"get": make_stealth_get_trap({})})
        wrapped = proxy.get("fn")
        assert "function fn(" not in wrapped.to_string()
        assert "function (" in wrapped.to_string()

    def test_native_function_tostring_carries_name(self):
        fn = NativeFunction(lambda this: None, name="toString")
        assert fn.to_string().startswith("function toString()")
        assert "[native code]" in fn.to_string()

    def test_stealth_override_value(self):
        target = make_target()
        proxy = JSProxy(target, {"get": make_stealth_get_trap({"plain": "lie"})})
        assert proxy.get("plain") == "lie"
        assert target.get("plain") == 1


class TestIsProxy:
    def test_predicate(self):
        target = make_target()
        assert is_proxy(JSProxy(target))
        assert not is_proxy(target)
