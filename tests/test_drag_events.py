"""HTML5 drag events (the Appendix C drag family)."""

import pytest

from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver import ActionChains
from repro.webdriver.driver import make_browser_driver


@pytest.fixture
def rig():
    driver = make_browser_driver()
    document = driver.window.document
    source = document.create_element(
        "div", Box(150, 400, 90, 90), id="card", attributes={"draggable": "true"}
    )
    target = document.create_element("div", Box(900, 420, 160, 120), id="bin")
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder, source, target


def manual_drag(driver, source, destination_client):
    pipeline = driver.pipeline
    start = driver.window.page_to_client(source.center)
    pipeline.move_mouse_to(start.x, start.y, force_event=True)
    pipeline.mouse_down()
    steps = 12
    for i in range(1, steps + 1):
        driver.window.clock.advance(16)
        pipeline.move_mouse_to(
            start.x + (destination_client.x - start.x) * i / steps,
            start.y + (destination_client.y - start.y) * i / steps,
            force_event=True,
        )
    pipeline.mouse_up()


class TestDragFamily:
    def test_full_event_sequence(self, rig):
        driver, recorder, source, target = rig
        manual_drag(driver, source, driver.window.page_to_client(target.center))
        types = [e.type for e in recorder.events]
        for expected in ("dragstart", "drag", "dragenter", "dragover", "drop", "dragend"):
            assert expected in types, expected
        # Ordering: dragstart before any drag; drop before dragend.
        assert types.index("dragstart") < types.index("drag")
        assert types.index("drop") < types.index("dragend")

    def test_drop_targets_the_destination(self, rig):
        driver, recorder, source, target = rig
        manual_drag(driver, source, driver.window.page_to_client(target.center))
        drop = recorder.of_type("drop")[0]
        assert drop.target is target
        dragend = recorder.of_type("dragend")[0]
        assert dragend.target is source

    def test_completed_drag_suppresses_click(self, rig):
        driver, recorder, source, target = rig
        manual_drag(driver, source, driver.window.page_to_client(target.center))
        assert recorder.of_type("click") == []

    def test_small_press_still_clicks(self, rig):
        """A press that never travels past the threshold is a click."""
        driver, recorder, source, _ = rig
        start = driver.window.page_to_client(source.center)
        driver.pipeline.move_mouse_to(start.x, start.y, force_event=True)
        driver.pipeline.mouse_down()
        driver.window.clock.advance(60)
        driver.pipeline.move_mouse_to(start.x + 2, start.y + 1, force_event=True)
        driver.pipeline.mouse_up()
        assert recorder.of_type("dragstart") == []
        assert len(recorder.of_type("click")) == 1

    def test_non_draggable_never_drags(self, rig):
        driver, recorder, _, target = rig
        button = driver.find_element_by_id("submit").dom_element
        manual_drag(driver, button, driver.window.page_to_client(target.center))
        assert recorder.of_type("dragstart") == []

    def test_dragleave_on_target_changes(self, rig):
        driver, recorder, source, target = rig
        # Drag across the page: body -> bin -> body.
        manual_drag(driver, source, driver.window.page_to_client(target.center))
        assert len(recorder.of_type("dragenter")) >= 1
        assert len(recorder.of_type("dragleave")) >= 1


class TestThroughAutomation:
    def test_selenium_drag_and_drop_fires_family(self, rig):
        driver, recorder, source, target = rig
        from repro.webdriver.webelement import WebElement

        chain = ActionChains(driver)
        chain.drag_and_drop(WebElement(driver, source), WebElement(driver, target))
        chain.perform()
        types = {e.type for e in recorder.events}
        assert {"dragstart", "drop", "dragend"} <= types

    def test_hlisa_drag_and_drop_fires_family(self, rig):
        driver, recorder, source, target = rig
        from repro.webdriver.webelement import WebElement

        chain = HLISA_ActionChains(driver, seed=4)
        chain.drag_and_drop(WebElement(driver, source), WebElement(driver, target))
        chain.perform()
        types = {e.type for e in recorder.events}
        assert {"dragstart", "drag", "dragover", "drop", "dragend"} <= types
        drop = recorder.of_type("drop")[0]
        assert drop.target is target
