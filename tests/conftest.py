"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.core import patching
from repro.webdriver.driver import make_browser_driver


@pytest.fixture
def driver():
    """A fresh WebDriver over the demo page."""
    return make_browser_driver()

@pytest.fixture
def automated_window():
    """A WebDriver-controlled browser window (webdriver flag set)."""
    return Window(profile=NavigatorProfile(webdriver=True))


@pytest.fixture
def human_window():
    """A regular (non-automated) browser window."""
    return Window(profile=NavigatorProfile(webdriver=False))


@pytest.fixture(autouse=True)
def _restore_selenium_patch():
    """Keep HLISA's Selenium monkey-patch from leaking between tests."""
    yield
    patching.unpatch_pointer_move_duration()
