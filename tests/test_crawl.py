"""The field-study simulation: population, visits, Table 2 / Fig. 4."""

import numpy as np
import pytest

from repro.crawl import (
    DetectionSignal,
    DetectorDeployment,
    OpenWPMCrawler,
    PopulationConfig,
    Reaction,
    SiteConfig,
    evaluate_breakage,
    evaluate_http_errors,
    evaluate_screenshots,
    generate_population,
    simulate_visit,
)
from repro.spoofing import SpoofingExtension, SpoofingMethod


def small_population(n=120, seed=3):
    config = PopulationConfig(
        n_sites=n,
        seed=seed,
        n_no_ads_detectors=2,
        n_less_ads_detectors=1,
        n_block_detectors=2,
        n_captcha_detectors=1,
        n_freeze_video_detectors=1,
        n_other_signal_ad_detectors=1,
        n_side_effect_blockers=1,
        n_http_only_detectors=8,
        n_layout_breakage=1,
        n_video_breakage=1,
    )
    return generate_population(config)


class TestPopulation:
    def test_deterministic_for_seed(self):
        a = generate_population(PopulationConfig(n_sites=50, seed=9,
                                                 n_http_only_detectors=2,
                                                 n_block_detectors=1,
                                                 n_captcha_detectors=1,
                                                 n_no_ads_detectors=1,
                                                 n_less_ads_detectors=1,
                                                 n_freeze_video_detectors=1,
                                                 n_other_signal_ad_detectors=1,
                                                 n_side_effect_blockers=1,
                                                 n_layout_breakage=1,
                                                 n_video_breakage=1))
        b = generate_population(PopulationConfig(n_sites=50, seed=9,
                                                 n_http_only_detectors=2,
                                                 n_block_detectors=1,
                                                 n_captcha_detectors=1,
                                                 n_no_ads_detectors=1,
                                                 n_less_ads_detectors=1,
                                                 n_freeze_video_detectors=1,
                                                 n_other_signal_ad_detectors=1,
                                                 n_side_effect_blockers=1,
                                                 n_layout_breakage=1,
                                                 n_video_breakage=1))
        assert [s.domain for s in a] == [s.domain for s in b]
        assert [s.unreachable for s in a] == [s.unreachable for s in b]

    def test_default_scale_matches_paper(self):
        population = generate_population()
        assert len(population) == 1000
        detectors = [s for s in population if s.detector is not None]
        visible = [
            s
            for s in detectors
            if s.detector.reaction is not Reaction.HTTP_ONLY
        ]
        assert 10 <= len(visible) <= 25  # ~1.7% of reachable sites
        assert sum(1 for s in population if s.breakage) == 2

    def test_special_roles_distinct_sites(self):
        population = small_population()
        special = [s for s in population if s.detector or s.breakage]
        assert len({s.domain for s in special}) == len(special)


class TestVisit:
    def _site(self, **kwargs):
        return SiteConfig(rank=1, domain="test.example", **kwargs)

    def test_unreachable_site(self):
        site = self._site(unreachable=True)
        record = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        assert not record.reached
        assert record.responses == []

    def test_plain_site_returns_200(self):
        record = simulate_visit(
            self._site(), extension=None, visit_index=0, rng=np.random.default_rng(0)
        )
        assert record.reached
        assert record.responses[0].status == 200
        assert not record.detected_as_bot

    def test_webdriver_detector_blocks_bare_crawler(self):
        site = self._site(
            detector=DetectorDeployment(DetectionSignal.WEBDRIVER_FLAG, Reaction.BLOCK_PAGE)
        )
        record = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        assert record.detected_as_bot
        assert record.screenshot.blocked
        assert record.responses[0].status == 403

    def test_webdriver_detector_misses_extension(self):
        site = self._site(
            detector=DetectorDeployment(DetectionSignal.WEBDRIVER_FLAG, Reaction.BLOCK_PAGE)
        )
        record = simulate_visit(
            site, extension=SpoofingExtension(), visit_index=0, rng=np.random.default_rng(0)
        )
        assert not record.detected_as_bot
        assert not record.screenshot.blocked

    def test_side_effect_detector_catches_extension(self):
        site = self._site(
            detector=DetectorDeployment(DetectionSignal.SIDE_EFFECTS, Reaction.BLOCK_PAGE)
        )
        record = simulate_visit(
            site, extension=SpoofingExtension(), visit_index=0, rng=np.random.default_rng(0)
        )
        assert record.detected_as_bot  # unnamed-function side effect

    def test_captcha_reaction(self):
        site = self._site(
            detector=DetectorDeployment(DetectionSignal.WEBDRIVER_FLAG, Reaction.CAPTCHA)
        )
        record = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        assert record.screenshot.captcha
        assert record.responses[0].status == 503

    def test_no_ads_reaction(self):
        site = self._site(
            ad_slots=4,
            detector=DetectorDeployment(DetectionSignal.WEBDRIVER_FLAG, Reaction.NO_ADS),
        )
        record = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        assert record.screenshot.missing_all_ads

    def test_breakage_only_with_extension(self):
        site = self._site(breakage="layout")
        plain = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        spoofed = simulate_visit(
            site, extension=SpoofingExtension(), visit_index=0, rng=np.random.default_rng(0)
        )
        assert not plain.screenshot.layout_deformed
        assert spoofed.screenshot.layout_deformed

    def test_http_only_detector_no_visible_change(self):
        site = self._site(
            detector=DetectorDeployment(DetectionSignal.WEBDRIVER_FLAG, Reaction.HTTP_ONLY)
        )
        record = simulate_visit(site, extension=None, visit_index=0, rng=np.random.default_rng(0))
        assert not record.screenshot.blocked
        assert record.first_party_errors() >= 1


class TestCrawlAndEvaluation:
    @pytest.fixture(scope="class")
    def crawls(self):
        population = small_population()
        baseline = OpenWPMCrawler("base", extension=None, instances=4, seed=5).crawl(population)
        extended = OpenWPMCrawler(
            "ext", extension=SpoofingExtension(), instances=4, seed=6
        ).crawl(population)
        return population, baseline, extended

    def test_visit_counts(self, crawls):
        population, baseline, _ = crawls
        assert len(baseline.records) == len(population) * 4
        reachable = sum(1 for s in population if not s.unreachable)
        assert len(baseline.successful_visits) <= reachable * 4

    def test_screenshot_eval_baseline_sees_detection(self, crawls):
        _, baseline, extended = crawls
        base_eval = evaluate_screenshots(baseline)
        ext_eval = evaluate_screenshots(extended)
        assert base_eval.blocking_captchas.sites >= 3
        assert ext_eval.blocking_captchas.sites <= 1  # side-effect blocker only
        assert base_eval.missing_ads.visits > ext_eval.missing_ads.visits

    def test_screenshot_rows_structure(self, crawls):
        _, baseline, _ = crawls
        rows = evaluate_screenshots(baseline).rows()
        assert rows[0][0] == "total"
        assert len(rows) == 6

    def test_breakage_report(self, crawls):
        _, baseline, extended = crawls
        report = evaluate_breakage(baseline, extended)
        assert len(report.deformed_layout_sites) == 1
        assert len(report.frozen_video_sites) == 1

    def test_http_errors_first_party_significant(self, crawls):
        _, baseline, extended = crawls
        evaluation = evaluate_http_errors(baseline, extended)
        assert evaluation.baseline_first_party_errors > evaluation.extended_first_party_errors
        assert evaluation.first_party_wilcoxon is not None
        assert evaluation.first_party_wilcoxon.significant(0.05)

    def test_http_errors_third_party_not_significant(self, crawls):
        _, baseline, extended = crawls
        evaluation = evaluate_http_errors(baseline, extended)
        assert evaluation.third_party_wilcoxon.p_value > 0.05

    def test_fig4_rows_dominated_by_403_503(self, crawls):
        _, baseline, extended = crawls
        evaluation = evaluate_http_errors(baseline, extended)
        deltas = {
            status: base - ext
            for status, (base, ext) in evaluation.status_counts.items()
            if status >= 400
        }
        assert deltas.get(403, 0) > 0
        biggest = sorted(deltas, key=lambda s: deltas[s], reverse=True)[:2]
        assert set(biggest) <= {403, 503}
