"""Statistics: Wilcoxon, distributions, descriptive (scipy cross-checks)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    Summary,
    chi_square_uniform,
    coefficient_of_variation,
    fit_normal,
    ks_statistic,
    ks_test_normal,
    normal_cdf,
    normal_pdf,
    summarize,
    wilcoxon_signed_rank,
)
from repro.stats.wilcoxon import _signed_ranks

scipy_stats = pytest.importorskip("scipy.stats")


class TestDescriptive:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1 and s.maximum == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_cv_of_constant_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cv_matches_definition(self):
        values = [1.0, 2.0, 3.0]
        assert coefficient_of_variation(values) == pytest.approx(
            np.std(values) / np.mean(values)
        )


class TestNormal:
    def test_pdf_peak_at_mean(self):
        assert normal_pdf(0.0) > normal_pdf(1.0)
        assert normal_pdf(5.0, mean=5.0, std=2.0) == pytest.approx(
            1.0 / (2.0 * math.sqrt(2 * math.pi))
        )

    def test_cdf_symmetry(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(-1.3) == pytest.approx(1.0 - normal_cdf(1.3))

    def test_cdf_matches_scipy(self):
        for x in (-2.5, -0.7, 0.0, 1.1, 3.0):
            assert normal_cdf(x) == pytest.approx(scipy_stats.norm.cdf(x), abs=1e-9)

    def test_invalid_std_rejected(self):
        with pytest.raises(ValueError):
            normal_pdf(0, std=0)
        with pytest.raises(ValueError):
            normal_cdf(0, std=-1)

    def test_fit_normal(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 3.0, size=5000)
        mean, std = fit_normal(sample)
        assert mean == pytest.approx(10.0, abs=0.2)
        assert std == pytest.approx(3.0, abs=0.2)


class TestKS:
    def test_ks_statistic_matches_scipy(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(0, 1, size=200)
        ours = ks_statistic(sample.tolist(), lambda v: normal_cdf(v))
        theirs = scipy_stats.kstest(sample, "norm").statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_normal_sample_passes(self):
        rng = np.random.default_rng(2)
        d, p = ks_test_normal(rng.normal(5, 2, size=300).tolist())
        assert d < 0.08

    def test_uniform_sample_fails_normality(self):
        rng = np.random.default_rng(3)
        d_uniform, _ = ks_test_normal(rng.uniform(-1, 1, size=400).tolist())
        d_normal, _ = ks_test_normal(rng.normal(0, 0.5, size=400).tolist())
        assert d_uniform > d_normal


class TestChiSquare:
    def test_uniform_sample_passes(self):
        rng = np.random.default_rng(4)
        stat, p = chi_square_uniform(rng.uniform(0, 1, size=1000).tolist(), 0, 1)
        assert p > 0.01

    def test_clustered_sample_fails(self):
        rng = np.random.default_rng(5)
        stat, p = chi_square_uniform(
            rng.normal(0.5, 0.05, size=1000).tolist(), 0, 1
        )
        assert p < 0.001

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            chi_square_uniform([0.5], 1, 0)


class TestWilcoxon:
    def test_matches_scipy_exact(self):
        x = [125, 115, 130, 140, 140, 115, 140, 125, 140, 135]
        y = [110, 122, 125, 120, 140, 124, 123, 137, 135, 145]
        ours = wilcoxon_signed_rank(x, y)
        theirs = scipy_stats.wilcoxon(x, y)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.02)

    def test_ties_at_small_n_use_the_exact_distribution(self):
        """Regression: any tie at small n used to abandon the exact
        branch for the normal approximation, which is worst exactly
        there.  The sample of test_matches_scipy_exact has tied
        |differences|, so it must now report method == "exact" and hit
        scipy's p (which enumerates the tied-rank null here) dead on."""
        x = [125, 115, 130, 140, 140, 115, 140, 125, 140, 135]
        y = [110, 122, 125, 120, 140, 124, 123, 137, 135, 145]
        ours = wilcoxon_signed_rank(x, y)
        assert ours.method == "exact"
        theirs = scipy_stats.wilcoxon(x, y)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-12)

    def test_two_tied_pairs_exact_p_is_half(self):
        """n=2 with equal |differences|, both positive: W+ sits at the
        distribution's maximum.  Exact two-sided p is 2 * P(W+ >= 3) =
        2 * 1/4 = 0.5; the pre-fix normal approximation gave ~0.35."""
        result = wilcoxon_signed_rank([2.0, 3.0], [1.0, 2.0])
        assert result.method == "exact"
        assert result.p_value == pytest.approx(0.5)

    def test_exact_with_ties_matches_brute_force(self):
        """Enumerate all sign assignments over the tie-averaged ranks."""
        import itertools

        x = [4.0, 6.0, 1.0, 9.0, 5.0, 2.0, 8.0]
        y = [3.0, 4.0, 2.0, 6.0, 7.0, 4.0, 7.0]
        result = wilcoxon_signed_rank(x, y)
        assert result.method == "exact"
        d = np.asarray(x) - np.asarray(y)
        d = d[d != 0]
        ranks = np.abs(_signed_ranks(d))
        dist = np.array(
            [
                sum(rank for rank, up in zip(ranks, signs) if up)
                for signs in itertools.product([False, True], repeat=d.size)
            ]
        )
        p_le = np.mean(dist <= result.w_plus + 1e-9)
        p_ge = np.mean(dist >= result.w_plus - 1e-9)
        expected = min(1.0, 2.0 * min(p_le, p_ge))
        assert result.p_value == pytest.approx(expected, abs=1e-12)

    def test_matches_scipy_large_sample(self):
        rng = np.random.default_rng(6)
        x = rng.normal(10, 2, size=120)
        y = x + rng.normal(0.5, 1.5, size=120)
        ours = wilcoxon_signed_rank(x.tolist(), y.tolist())
        theirs = scipy_stats.wilcoxon(x, y, correction=True)
        assert ours.method == "normal"
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.1)

    def test_significant_shift_detected(self):
        rng = np.random.default_rng(7)
        x = rng.normal(10, 1, size=60)
        y = x - 0.8
        result = wilcoxon_signed_rank(x.tolist(), y.tolist())
        assert result.significant(alpha=0.05)

    def test_no_shift_not_significant(self):
        rng = np.random.default_rng(8)
        x = rng.normal(10, 1, size=60)
        y = x + rng.normal(0, 1, size=60)
        result = wilcoxon_signed_rank(x.tolist(), y.tolist())
        assert result.p_value > 0.01

    def test_all_ties_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2, 3], [1, 2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1])

    def test_w_statistics_sum(self):
        """W+ + W- must equal n(n+1)/2."""
        x = [5.0, 7.0, 3.0, 9.0, 12.0, 1.0]
        y = [4.0, 9.0, 2.0, 8.5, 15.0, 2.5]
        result = wilcoxon_signed_rank(x, y)
        assert result.w_plus + result.w_minus == result.n * (result.n + 1) / 2

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=8,
            max_size=40,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_p_value_in_unit_interval(self, base, seed):
        rng = np.random.default_rng(seed)
        x = np.array(base)
        y = x + rng.normal(0, 1, size=len(base))
        try:
            result = wilcoxon_signed_rank(x.tolist(), y.tolist())
        except ValueError:
            return  # all ties: legitimately rejected
        assert 0.0 <= result.p_value <= 1.0

    def test_symmetry_of_swapped_samples(self):
        x = [10.0, 11.0, 15.0, 9.0, 14.0, 13.0, 8.0]
        y = [9.5, 13.0, 12.0, 9.5, 16.0, 11.0, 9.0]
        a = wilcoxon_signed_rank(x, y)
        b = wilcoxon_signed_rank(y, x)
        assert a.p_value == pytest.approx(b.p_value)
        assert a.w_plus == b.w_minus
