"""Parameter persistence: the calibrate-once, ship-with-the-crawler flow."""

import pytest

from repro.humans.profile import HumanProfile
from repro.models.bezier import TrajectoryParams
from repro.models.clicks import ClickParams
from repro.models.params_io import (
    dumps_params,
    load_params,
    loads_params,
    save_params,
)
from repro.models.scroll_cadence import ScrollParams
from repro.models.typing_rhythm import TypingParams


class TestRoundTrip:
    def test_all_sections(self):
        payload = dumps_params(
            trajectory=TrajectoryParams(base_speed_px_s=777.0),
            clicks=ClickParams(sigma_frac=0.31),
            typing=TypingParams(dwell_mean_ms=111.0),
            scroll=ScrollParams(ticks_per_sweep_mean=9.0),
            human_profile=HumanProfile(name="subject-x", seed=99),
        )
        loaded = loads_params(payload)
        assert loaded["trajectory"].base_speed_px_s == 777.0
        assert loaded["clicks"].sigma_frac == 0.31
        assert loaded["typing"].dwell_mean_ms == 111.0
        assert loaded["scroll"].ticks_per_sweep_mean == 9.0
        assert loaded["human_profile"].name == "subject-x"
        assert loaded["human_profile"].seed == 99

    def test_partial_document(self):
        payload = dumps_params(clicks=ClickParams())
        loaded = loads_params(payload)
        assert set(loaded) == {"clicks"}

    def test_defaults_survive(self):
        loaded = loads_params(dumps_params(typing=TypingParams()))
        assert loaded["typing"] == TypingParams()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "params.json"
        save_params(str(path), scroll=ScrollParams(wheel_tick_px=53.0))
        loaded = load_params(str(path))
        assert loaded["scroll"].wheel_tick_px == 53.0


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            loads_params('{"format": "other"}')

    def test_unknown_section_rejected(self):
        payload = '{"format": "repro-params-v1", "mystery": {}}'
        with pytest.raises(ValueError):
            loads_params(payload)

    def test_unknown_field_rejected(self):
        payload = (
            '{"format": "repro-params-v1", "clicks": {"sigma_frac": 0.3, '
            '"bogus": 1}}'
        )
        with pytest.raises(ValueError, match="bogus"):
            loads_params(payload)

    def test_wrong_type_rejected_on_dump(self):
        with pytest.raises(TypeError):
            dumps_params(clicks=TypingParams())

    def test_loaded_params_drive_hlisa(self):
        """End to end: persisted params configure a chain."""
        from repro.core.hlisa_action_chains import HLISA_ActionChains
        from repro.webdriver.driver import make_browser_driver

        loaded = loads_params(
            dumps_params(clicks=ClickParams(dwell_mean_ms=199.0, dwell_sd_ms=1.0))
        )
        driver = make_browser_driver()
        from repro.events.recorder import EventRecorder
        from repro.events.taxonomy import ALL_INTERACTION_EVENTS

        recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
        chain = HLISA_ActionChains(driver, seed=3, click_params=loaded["clicks"])
        chain.click(driver.find_element_by_id("submit"))
        chain.perform()
        assert recorder.clicks()[0].dwell_ms == pytest.approx(199.0, abs=10)
