"""Per-backend behaviour of the Appendix G tool re-implementations."""

import numpy as np
import pytest

from repro.analysis.trajectory import per_movement_metrics
from repro.experiment.session import Session
from repro.geometry import Box
from repro.tools import make_backend
from repro.tools.hmm import bspline_path
from repro.geometry import Point


def click_session():
    session = Session(automated=True)
    button = session.document.create_element("button", Box(700, 400, 100, 60), id="b")
    return session, button


class TestBSpline:
    def test_endpoints_exact(self):
        rng = np.random.default_rng(1)
        path = bspline_path(Point(0, 0), Point(500, 300), rng)
        assert path[0].distance_to(Point(0, 0)) < 1e-6
        assert path[-1].distance_to(Point(500, 300)) < 1e-6

    def test_arc_length_uniform(self):
        rng = np.random.default_rng(2)
        path = bspline_path(Point(0, 0), Point(800, 100), rng, samples=80)
        gaps = [path[i].distance_to(path[i + 1]) for i in range(len(path) - 1)]
        assert np.std(gaps) / np.mean(gaps) < 0.05  # constant pace

    def test_curved(self):
        rng = np.random.default_rng(3)
        path = bspline_path(Point(0, 0), Point(800, 0), rng)
        assert max(abs(p.y) for p in path) > 5.0


class TestMovementCharacter:
    @pytest.mark.parametrize(
        "name,expect_accel",
        [("PyC", False), ("pyHM", True), ("BezMouse", False)],
    )
    def test_speed_profiles(self, name, expect_accel):
        session, button = click_session()
        backend = make_backend(name)
        for _ in range(4):
            backend.click_element(session, button)
            session.clock.advance(400)
            button.box = Box(
                float(np.random.default_rng(hash(name) % 100).uniform(20, 1100)),
                300.0, 100.0, 60.0,
            )
        movements = [
            m
            for m in per_movement_metrics(session.recorder.mouse_path())
            if m.chord_length > 150
        ]
        assert movements
        edge_mid = float(np.mean([m.edge_to_middle_speed_ratio for m in movements]))
        if name == "pyHM":
            assert edge_mid < 0.75
        # (PyC's ease-out decelerates but does not accelerate; BezMouse
        # is uniform -- neither shows the full bell profile.)

    def test_clickbot_randomises_position(self):
        session, button = click_session()
        backend = make_backend("ClickBot")
        positions = set()
        for _ in range(10):
            backend.click_element(session, button)
            session.clock.advance(300)
            clicks = session.recorder.clicks()
            if clicks:
                positions.add(clicks[-1].position)
        assert len(positions) > 3

    def test_scroller_scrolls_in_ticks(self):
        session = Session(automated=True, page_height=6000)
        make_backend("Scroller").scroll_by(session, 2000)
        scrolls = session.recorder.scroll_events()
        assert len(scrolls) >= 30
        steps = np.abs(np.diff([0.0] + [e.page_y for e in scrolls]))
        assert np.median(steps) == 57.0

    def test_thesis_typing_has_sentence_pauses(self):
        session = Session(automated=True)
        area = session.document.create_element("textarea", Box(300, 200, 400, 120))
        make_backend("[20]").type_text(
            session, area, "First part. Second part. Third part here."
        )
        strokes = [s for s in session.recorder.key_strokes() if len(s.key) == 1]
        downs = np.array([s.down.timestamp for s in strokes])
        gaps = np.diff(downs)
        assert float(np.quantile(gaps, 0.95)) > 2.0 * float(np.median(gaps))

    def test_hlisa_backend_is_full_agent(self):
        session = Session(automated=True, page_height=4000)
        area = session.document.create_element("textarea", Box(300, 200, 400, 120))
        backend = make_backend("HLISA")
        backend.type_text(session, area, "ok")
        backend.scroll_by(session, 600)
        assert area.value == "ok"
        assert session.recorder.scroll_events()
