"""Selenium ActionChains semantics: the artefacts the paper measures."""

import numpy as np
import pytest

from repro.analysis.trajectory import per_movement_metrics, trajectory_metrics
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver import ActionChains, MoveTargetOutOfBoundsException, actions
from repro.webdriver.action_chains import SELENIUM_INTER_KEY_MS
from repro.webdriver.driver import make_browser_driver
from repro.webdriver.errors import InvalidArgumentException


@pytest.fixture
def rig():
    driver = make_browser_driver()
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder


class TestPointerMoves:
    def test_move_is_straight_line(self, rig):
        """Fig. 1 A: Selenium moves in a perfectly straight line."""
        driver, recorder = rig
        ActionChains(driver).move_to_element(
            driver.find_element_by_id("submit")
        ).perform()
        metrics = trajectory_metrics(recorder.mouse_path())
        assert metrics.straightness > 0.999

    def test_move_is_uniform_speed(self, rig):
        driver, recorder = rig
        ActionChains(driver).move_to_location(1000, 600).perform()
        metrics = trajectory_metrics(recorder.mouse_path())
        assert metrics.speed_cv < 0.1

    def test_move_lands_on_exact_center(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        ActionChains(driver).move_to_element(element).perform()
        last = recorder.mouse_path()[-1]
        center = element.dom_element.center
        assert (last[1], last[2]) == (center.x, center.y)

    def test_move_duration_has_lower_bound(self, rig):
        """Selenium clamps pointer-move durations (the bound HLISA
        patches away)."""
        driver, recorder = rig
        move = actions.create_pointer_move(10, 10, duration_ms=5.0)
        assert move.duration_ms == actions.MIN_POINTER_MOVE_DURATION_MS

    def test_negative_duration_rejected(self):
        with pytest.raises(InvalidArgumentException):
            actions.create_pointer_move(0, 0, duration_ms=-1)

    def test_move_by_offset(self, rig):
        driver, recorder = rig
        ActionChains(driver).move_to_location(100, 100).move_by_offset(50, -20).perform()
        last = recorder.mouse_path()[-1]
        assert (last[1], last[2]) == (150.0, 80.0)

    def test_move_with_offset_from_center(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        ActionChains(driver).move_to_element_with_offset(element, 10, 5).perform()
        last = recorder.mouse_path()[-1]
        center = element.dom_element.center
        assert (last[1], last[2]) == (center.x + 10, center.y + 5)

    def test_out_of_viewport_move_raises(self, rig):
        driver, _ = rig
        with pytest.raises(MoveTargetOutOfBoundsException):
            ActionChains(driver).move_to_location(99999, 10).perform()

    def test_move_to_offscreen_element_scrolls_first(self):
        driver = make_browser_driver(page_height=6000)
        driver.window.document.create_element("button", Box(300, 5000, 80, 40), id="deep")
        element = driver.find_element_by_id("deep")
        ActionChains(driver).move_to_element(element).perform()
        assert driver.window.is_in_viewport(element.dom_element.center)


class TestClicks:
    def test_click_zero_dwell(self, rig):
        driver, recorder = rig
        ActionChains(driver).click(driver.find_element_by_id("submit")).perform()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        assert clicks[0].dwell_ms == 0.0

    def test_double_click_fires_dblclick(self, rig):
        driver, recorder = rig
        ActionChains(driver).double_click(driver.find_element_by_id("submit")).perform()
        assert len(recorder.of_type("dblclick")) == 1

    def test_context_click(self, rig):
        driver, recorder = rig
        ActionChains(driver).context_click(driver.find_element_by_id("submit")).perform()
        assert len(recorder.of_type("contextmenu")) == 1

    def test_click_and_hold_release(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        chain = ActionChains(driver).click_and_hold(element).pause(0.2).release()
        chain.perform()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        assert clicks[0].dwell_ms == pytest.approx(200.0, abs=2)

    def test_drag_and_drop(self, rig):
        driver, recorder = rig
        source = driver.find_element_by_id("submit")
        target = driver.find_element_by_id("cancel")
        ActionChains(driver).drag_and_drop(source, target).perform()
        downs = recorder.of_type("mousedown")
        ups = recorder.of_type("mouseup")
        assert len(downs) == 1 and len(ups) == 1
        assert ups[0].client_x > downs[0].client_x  # released over 'cancel'


class TestKeyboard:
    def test_send_keys_zero_dwell(self, rig):
        driver, recorder = rig
        driver.find_element_by_id("text_area").send_keys("")  # focus
        ActionChains(driver).send_keys("hello").perform()
        strokes = recorder.key_strokes()
        assert len(strokes) == 5
        assert all(s.dwell_ms == 0.0 for s in strokes)

    def test_send_keys_no_shift_for_capitals(self, rig):
        driver, recorder = rig
        ActionChains(driver).send_keys("Hi").perform()
        keys = [e.key for e in recorder.of_type("keydown")]
        assert "Shift" not in keys
        assert "H" in keys

    def test_inter_key_interval_matches_cpm(self):
        assert SELENIUM_INTER_KEY_MS == pytest.approx(4.5, abs=0.01)

    def test_send_keys_to_element_clicks_first(self, rig):
        driver, recorder = rig
        area = driver.find_element_by_id("text_area")
        ActionChains(driver).send_keys_to_element(area, "x").perform()
        assert recorder.clicks()  # a click happened
        assert area.get_attribute("value") == "x"

    def test_key_down_up_explicit(self, rig):
        driver, recorder = rig
        ActionChains(driver).key_down("Shift").send_keys("a").key_up("Shift").perform()
        a_event = [e for e in recorder.of_type("keydown") if e.key == "a"][0]
        assert a_event.shift_key is True


class TestChainPlumbing:
    def test_perform_clears_queue(self, rig):
        driver, _ = rig
        chain = ActionChains(driver).move_to_location(10, 10)
        assert len(chain) == 1
        chain.perform()
        assert len(chain) == 0

    def test_reset_actions(self, rig):
        driver, recorder = rig
        chain = ActionChains(driver).move_to_location(10, 10).reset_actions()
        chain.perform()
        assert recorder.mouse_path() == []

    def test_negative_pause_rejected(self, rig):
        driver, _ = rig
        with pytest.raises(InvalidArgumentException):
            ActionChains(driver).pause(-1)

    def test_pause_advances_clock(self, rig):
        driver, _ = rig
        before = driver.window.clock.now()
        ActionChains(driver).pause(0.5).perform()
        assert driver.window.clock.now() - before == pytest.approx(500.0)

    def test_scroll_to_location_no_wheel(self, rig):
        driver, recorder = rig
        driver.window.document.height = 4000
        ActionChains(driver).scroll_to_location(0, 1500).perform()
        assert recorder.of_type("wheel") == []
        assert driver.window.scroll_y == 1500
