"""The Selenium-like WebDriver layer."""

import pytest

from repro.browser.input_pipeline import SELENIUM_DOUBLE_CLICK_INTERVAL_MS
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver import (
    ElementNotInteractableException,
    NoSuchElementException,
    WebDriver,
    make_browser_driver,
)
from repro.webdriver.errors import StaleElementReferenceException


def recorder_for(driver):
    return EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)


class TestSession:
    def test_navigator_reports_webdriver(self):
        """W3C convention: automated browsers expose webdriver=true."""
        driver = make_browser_driver()
        assert driver.window.navigator.get("webdriver") is True

    def test_selenium_double_click_environment(self):
        driver = make_browser_driver()
        assert driver.pipeline.double_click_interval_ms == SELENIUM_DOUBLE_CLICK_INTERVAL_MS

    def test_get_uses_page_loader(self):
        driver = make_browser_driver()
        fresh = Document()
        driver.page_loader = lambda url: fresh
        driver.get("https://example.org/")
        assert driver.window.document is fresh
        assert driver.current_url == "https://example.org/"

    def test_load_document_resets_scroll(self):
        driver = make_browser_driver(page_height=5000)
        driver.pipeline.scroll_programmatic(0, 2000)
        driver.load_document(Document())
        assert driver.window.scroll_y == 0


class TestFindElement:
    def test_by_id(self, driver):
        element = driver.find_element("id", "text_area")
        assert element.tag_name == "textarea"

    def test_find_element_by_id_shorthand(self, driver):
        assert driver.find_element_by_id("submit").text == "Submit"

    def test_by_tag_and_class_and_css(self, driver):
        assert driver.find_element("tag name", "button") is not None
        assert driver.find_element("css selector", "#cancel").text == "Cancel"

    def test_missing_raises(self, driver):
        with pytest.raises(NoSuchElementException):
            driver.find_element("id", "ghost")

    def test_unknown_strategy_raises(self, driver):
        with pytest.raises(NoSuchElementException):
            driver.find_element("xpath", "//div")

    def test_find_elements_returns_all(self, driver):
        assert len(driver.find_elements("tag name", "button")) == 2

    def test_find_elements_empty_for_missing(self, driver):
        assert driver.find_elements("id", "ghost") == []


class TestWebElement:
    def test_location_size_rect(self, driver):
        element = driver.find_element_by_id("submit")
        assert element.location == {"x": 480, "y": 360}
        assert element.size == {"width": 160, "height": 40}
        assert element.rect["width"] == 160

    def test_get_attribute(self, driver):
        link = driver.find_element_by_id("home_link")
        assert link.get_attribute("href") == "/"
        assert link.get_attribute("id") == "home_link"

    def test_click_teleports_to_exact_center(self, driver):
        recorder = recorder_for(driver)
        button = driver.find_element_by_id("submit")
        button.click()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        center = button.dom_element.center
        assert clicks[0].position == (center.x, center.y)
        assert clicks[0].dwell_ms == 0.0  # zero dwell

    def test_click_scrolls_into_view(self):
        driver = make_browser_driver(page_height=5000)
        far = driver.window.document.create_element(
            "button", Box(400, 4500, 100, 40), id="far"
        )
        driver.find_element_by_id("far").click()
        assert driver.window.is_in_viewport(far.center)

    def test_click_hidden_raises(self, driver):
        element = driver.find_element_by_id("submit")
        element.dom_element.visible = False
        with pytest.raises(ElementNotInteractableException):
            element.click()

    def test_stale_element_raises(self, driver):
        element = driver.find_element_by_id("submit")
        driver.load_document(Document())
        with pytest.raises(StaleElementReferenceException):
            element.click()

    def test_send_keys_focuses_and_types(self, driver):
        area = driver.find_element_by_id("text_area")
        area.send_keys("hi")
        assert area.get_attribute("value") == "hi"
        assert driver.window.document.active_element is area.dom_element

    def test_clear(self, driver):
        area = driver.find_element_by_id("text_area")
        area.send_keys("hi")
        area.clear()
        assert area.get_attribute("value") == ""

    def test_equality_by_dom_identity(self, driver):
        a = driver.find_element_by_id("submit")
        b = driver.find_element_by_id("submit")
        assert a == b
        assert hash(a) == hash(b)


class TestExecuteScript:
    def test_scroll_to(self):
        driver = make_browser_driver(page_height=4000)
        driver.execute_script("window.scrollTo(0, 1200)")
        assert driver.window.scroll_y == 1200

    def test_scroll_by(self):
        driver = make_browser_driver(page_height=4000)
        driver.execute_script("window.scrollBy(0, 300);")
        driver.execute_script("window.scrollBy(0, 300);")
        assert driver.window.scroll_y == 600

    def test_unknown_script_raises(self, driver):
        with pytest.raises(NotImplementedError):
            driver.execute_script("alert(1)")


class TestTypeLikeSelenium:
    def test_rate_is_13333_cpm(self, driver):
        """Section 4.1: 'inhumanly fast (13,333 characters per minute)'."""
        area = driver.find_element_by_id("text_area")
        start = driver.window.clock.now()
        area.send_keys("x" * 100)
        elapsed_minutes = (driver.window.clock.now() - start) / 60000.0
        cpm = 100 / elapsed_minutes
        assert cpm == pytest.approx(13333, rel=0.02)
