"""repro.shard: deterministic planner, fixpoint executor, byte-exact merge.

The oracle tests here are the subsystem's acceptance criteria: a sharded
crawl's merged artifacts -- checkpoint, trace, metrics, records, probe
ledger -- must be byte-identical to a serial same-seed run, for multiple
worker counts and shard sizes, and under interrupt-then-resume at every
shard boundary.
"""

import json

import numpy as np
import pytest

from repro.crawl import (
    PopulationConfig,
    SupervisorConfig,
    generate_population,
)
from repro.faults import DELAY_GRID_MS, BackoffPolicy, FaultPlan
from repro.obs.merge import MergeError, merge_metrics_states, merge_spans
from repro.obs.span import Span
from repro.shard import (
    FaultLogEntry,
    ManifestError,
    ShardRunSpec,
    build_supervisor,
    fold_fault_log,
    fresh_browser_states,
    observed_triggers,
    plan_shards,
    population_digest,
    run_sharded_crawl,
    shard_paths,
)
from repro.shard.cli import main as shard_main
from repro.shard.worker import WATCHDOGS_NONE


def small_population(n=32, seed=3):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=1,
            n_captcha_detectors=1,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=1,
            n_http_only_detectors=3,
        )
    )


def make_config():
    # A tight recycle budget so faults recycle browsers *across* shard
    # boundaries: the hard case the entry-state fixpoint exists for.
    return SupervisorConfig(recycle_after_faults=2, checkpoint_every_sites=3)


def make_spec(watchdogs="default"):
    return ShardRunSpec(
        crawler_name="supervised",
        seed=7,
        instances=3,
        with_extension=True,
        config=make_config(),
        fault_plan=FaultPlan.generate(POPULATION, 3, rate=0.3, seed=11),
        ledger=True,
        watchdogs=watchdogs,
    )


POPULATION = small_population()


def run_serial(spec, out_dir):
    """The serial oracle: one supervisor, same crawl, canonical exports."""
    out_dir.mkdir(parents=True, exist_ok=True)
    supervisor = build_supervisor(spec)
    result = supervisor.crawl(
        POPULATION,
        checkpoint_path=out_dir / "crawl.ckpt.json",
        trace_path=out_dir / "crawl.trace.jsonl",
        ledger_path=out_dir / "crawl.ledger.jsonl" if spec.ledger else None,
    )
    canonical = dict(sort_keys=True, separators=(",", ":"))
    (out_dir / "crawl.metrics.json").write_text(
        json.dumps(supervisor.metrics.state_dict(), **canonical) + "\n"
    )
    (out_dir / "crawl.records.json").write_text(
        json.dumps([r.to_dict() for r in result.records], **canonical) + "\n"
    )
    return result


ARTIFACTS = (
    "crawl.ckpt.json",
    "crawl.trace.jsonl",
    "crawl.metrics.json",
    "crawl.records.json",
    "crawl.ledger.jsonl",
)


def assert_identical_dirs(dir_a, dir_b, artifacts=ARTIFACTS):
    for name in artifacts:
        assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes(), (
            f"{name} diverges between {dir_a} and {dir_b}"
        )


@pytest.fixture(scope="module")
def serial_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    run_serial(make_spec(), out)
    return out


class TestPlanner:
    def test_contiguous_blocks_cover_population(self):
        plan = plan_shards(POPULATION, 7, seed=7)
        assert [shard.start for shard in plan.shards] == [0, 7, 14, 21, 28]
        flattened = [site for shard in plan.shards for site in shard.sites]
        assert flattened == list(POPULATION)

    def test_plan_is_independent_of_anything_but_inputs(self):
        first = plan_shards(POPULATION, 7, seed=7)
        second = plan_shards(list(POPULATION), 7, seed=7)
        assert first.digest == second.digest
        assert [s.shard_id for s in first.shards] == [
            s.shard_id for s in second.shards
        ]

    def test_seed_and_size_and_content_move_the_digest(self):
        base = plan_shards(POPULATION, 7, seed=7)
        assert plan_shards(POPULATION, 7, seed=8).digest != base.digest
        assert plan_shards(POPULATION, 8, seed=7).digest != base.digest
        assert (
            plan_shards(POPULATION[:-1], 7, seed=7).digest != base.digest
        )

    def test_population_digest_is_content_addressed(self):
        assert population_digest(POPULATION) == population_digest(
            list(POPULATION)
        )
        assert population_digest(POPULATION) != population_digest(
            POPULATION[::-1]
        )

    def test_rejects_nonpositive_shard_size(self):
        with pytest.raises(ValueError):
            plan_shards(POPULATION, 0, seed=7)


class TestBackoffGrid:
    def test_jittered_delays_land_on_the_dyadic_grid(self):
        policy = BackoffPolicy()
        for attempt in range(4):
            for draw in range(20):
                rng = np.random.default_rng([7, 0x52, attempt, draw])
                delay = policy.delay_ms(attempt, rng=rng)
                # Exactly representable: an integer number of grid steps.
                steps = delay / DELAY_GRID_MS
                assert steps == int(steps)

    def test_quantisation_stays_inside_the_jitter_envelope(self):
        policy = BackoffPolicy()
        for attempt in range(4):
            base = policy.delay_ms(attempt)  # un-jittered, exact
            rng = np.random.default_rng([7, 0x52, attempt])
            delay = policy.delay_ms(attempt, rng=rng)
            slack = policy.jitter * base + DELAY_GRID_MS
            assert base - slack <= delay <= base + slack


class TestFaultLogFold:
    def test_fatal_faults_recycle_immediately(self):
        log = [FaultLogEntry(0, True, False), FaultLogEntry(0, True, False)]
        exits, triggers = fold_fault_log(
            fresh_browser_states(2), log, recycle_after_faults=2
        )
        assert exits[0] == {"fault_count": 0, "recycles": 2}
        assert triggers == []

    def test_budget_triggers_at_threshold_and_resets(self):
        log = [FaultLogEntry(1, False, False)] * 5
        exits, triggers = fold_fault_log(
            fresh_browser_states(2), log, recycle_after_faults=2
        )
        assert triggers == [1, 3]
        assert exits[1] == {"fault_count": 1, "recycles": 2}

    def test_entry_state_moves_the_trigger_positions(self):
        log = [FaultLogEntry(0, False, False)] * 3
        _, cold = fold_fault_log(
            fresh_browser_states(1), log, recycle_after_faults=2
        )
        _, warm = fold_fault_log(
            [{"fault_count": 1, "recycles": 0}], log, recycle_after_faults=2
        )
        assert cold == [1]
        assert warm == [0, 2]

    def test_recycling_off_is_inert(self):
        log = [FaultLogEntry(0, False, True), FaultLogEntry(0, True, False)]
        entry = [{"fault_count": 1, "recycles": 4}]
        exits, triggers = fold_fault_log(
            entry, log, recycle_after_faults=2, recycling=False
        )
        assert exits == entry and exits is not entry
        assert triggers == []

    def test_observed_triggers_reads_the_flags(self):
        log = [
            FaultLogEntry(0, False, False),
            FaultLogEntry(0, False, True),
            FaultLogEntry(1, False, True),
        ]
        assert observed_triggers(log) == [1, 2]


def _span(span_id, parent, name, start, end):
    span = Span(span_id, parent, name, float(start), {})
    span.end_ms = float(end)
    return span


class TestSpanMerge:
    def test_renumbers_and_rebases_across_shards(self):
        shard0 = [
            _span(1, 0, "crawl", 0, 100),
            _span(2, 1, "visit", 10, 40),
        ]
        shard1 = [
            _span(1, 0, "crawl", 0, 50),
            _span(2, 1, "visit", 5, 30),
            _span(3, 2, "attempt", 6, 20),
        ]
        merged = merge_spans([shard0, shard1])
        assert [(s.span_id, s.parent_id, s.name) for s in merged] == [
            (1, 0, "crawl"),
            (2, 1, "visit"),
            (3, 1, "visit"),
            (4, 3, "attempt"),
        ]
        assert merged[0].end_ms == 150.0
        assert merged[2].start_ms == 105.0
        assert merged[3].start_ms == 106.0

    def test_inputs_are_not_mutated(self):
        shard0 = [_span(1, 0, "crawl", 0, 100), _span(2, 1, "visit", 1, 2)]
        shard1 = [_span(1, 0, "crawl", 0, 50), _span(2, 1, "visit", 3, 4)]
        merge_spans([shard0, shard1])
        assert shard1[1].span_id == 2 and shard1[1].start_ms == 3.0

    def test_rejects_open_or_missing_roots(self):
        open_root = Span(1, 0, "crawl", 0.0, {})
        with pytest.raises(MergeError):
            merge_spans([[open_root]])
        with pytest.raises(MergeError):
            merge_spans([[]])
        with pytest.raises(MergeError):
            merge_spans(
                [[_span(1, 0, "crawl", 0, 9), _span(2, 0, "crawl", 1, 2)]]
            )
        with pytest.raises(MergeError):
            merge_spans([[_span(1, 0, "crawl", 5, 9)]])


class TestMetricsMerge:
    def test_counters_and_histograms_sum(self):
        a = {
            "counters": {"visits": 2},
            "histograms": {
                "visit_ms": {
                    "bounds": [1.0, 2.0],
                    "buckets": [1, 0, 0],
                    "total": 0.5,
                    "count": 1,
                }
            },
        }
        b = {
            "counters": {"visits": 3, "faults.crash": 1},
            "histograms": {
                "visit_ms": {
                    "bounds": [1.0, 2.0],
                    "buckets": [0, 2, 0],
                    "total": 3.0,
                    "count": 2,
                }
            },
        }
        merged = merge_metrics_states([a, b])
        assert merged["counters"] == {"faults.crash": 1, "visits": 5}
        assert merged["histograms"]["visit_ms"] == {
            "bounds": [1.0, 2.0],
            "buckets": [1, 2, 0],
            "total": 3.5,
            "count": 3,
        }

    def test_bound_mismatch_is_an_error(self):
        a = {
            "histograms": {
                "h": {"bounds": [1.0], "buckets": [0, 0], "total": 0.0, "count": 0}
            }
        }
        b = {
            "histograms": {
                "h": {"bounds": [2.0], "buckets": [0, 0], "total": 0.0, "count": 0}
            }
        }
        with pytest.raises(MergeError):
            merge_metrics_states([a, b])


def run_sharded(out_dir, *, shard_size=7, jobs=1, watchdogs="default",
                max_shards=None):
    spec = make_spec(watchdogs)
    return run_sharded_crawl(
        POPULATION,
        out_dir=out_dir,
        crawler_name=spec.crawler_name,
        seed=spec.seed,
        instances=spec.instances,
        with_extension=spec.with_extension,
        config=spec.config,
        fault_plan=spec.fault_plan,
        ledger=spec.ledger,
        watchdogs=watchdogs,
        shard_size=shard_size,
        jobs=jobs,
        max_shards=max_shards,
    )


class TestShardedOracle:
    """Merged sharded output is byte-identical to the serial run."""

    def test_single_job_matches_serial(self, tmp_path, serial_dir):
        outcome = run_sharded(tmp_path / "sharded", jobs=1)
        assert outcome.complete
        # The fixpoint actually ran: cross-shard recycle pressure forces
        # at least one shard to re-run under its true entry state.
        assert outcome.shards_run > len(outcome.plan)
        assert_identical_dirs(tmp_path / "sharded", serial_dir)

    def test_two_jobs_match_serial(self, tmp_path, serial_dir):
        outcome = run_sharded(tmp_path / "sharded", jobs=2)
        assert outcome.complete
        assert_identical_dirs(tmp_path / "sharded", serial_dir)

    def test_shard_size_does_not_change_the_bytes(self, tmp_path, serial_dir):
        outcome = run_sharded(tmp_path / "sharded", shard_size=5, jobs=2)
        assert outcome.complete
        assert_identical_dirs(tmp_path / "sharded", serial_dir)

    def test_watchdogs_none_ablation_matches_its_serial(self, tmp_path):
        serial = tmp_path / "serial"
        run_serial(make_spec(WATCHDOGS_NONE), serial)
        outcome = run_sharded(
            tmp_path / "sharded", jobs=2, watchdogs=WATCHDOGS_NONE
        )
        assert outcome.complete
        assert outcome.stats.recycles == 0
        assert_identical_dirs(tmp_path / "sharded", serial)

    def test_merged_stats_match_the_records(self, tmp_path, serial_dir):
        outcome = run_sharded(tmp_path / "sharded", jobs=1)
        stats = outcome.stats
        assert stats.visits == len(outcome.result.records)
        assert stats.reached == len(outcome.result.successful_visits)
        assert stats.failed == len(outcome.result.failed_visits)
        assert stats.resumed == 0

    def test_merged_checkpoint_resumes_a_serial_supervisor(
        self, tmp_path, serial_dir
    ):
        outcome = run_sharded(tmp_path / "sharded", jobs=1)
        supervisor = build_supervisor(make_spec())
        resumed = supervisor.crawl(
            POPULATION, checkpoint_path=outcome.artifacts.checkpoint
        )
        assert supervisor.stats.resumed == len(POPULATION) * 3
        assert json.dumps([r.to_dict() for r in resumed.records]) == (
            json.dumps([r.to_dict() for r in outcome.result.records])
        )


class TestInterruptResume:
    def test_resume_at_every_shard_boundary_is_byte_identical(
        self, tmp_path, serial_dir
    ):
        plan_len = len(plan_shards(POPULATION, 7, seed=7))
        assert plan_len == 5
        for cut in range(1, plan_len):
            out = tmp_path / f"cut{cut}"
            interrupted = run_sharded(out, max_shards=cut)
            assert not interrupted.complete
            assert interrupted.shards_run == cut
            assert interrupted.artifacts is None
            resumed = run_sharded(out)
            assert resumed.complete
            # Only the missing shards (plus fixpoint re-runs) executed.
            assert resumed.shards_run >= plan_len - cut
            assert_identical_dirs(out, serial_dir)

    def test_resume_reuses_recorded_shards(self, tmp_path):
        out = tmp_path / "sharded"
        run_sharded(out, max_shards=2)
        manifest = json.loads((out / "manifest.json").read_text())
        assert sorted(manifest["shards"]) == ["0", "1"]
        resumed = run_sharded(out)
        assert resumed.complete

    def test_manifest_rejects_a_different_spec(self, tmp_path):
        out = tmp_path / "sharded"
        run_sharded(out, max_shards=1)
        spec = make_spec()
        with pytest.raises(ManifestError):
            run_sharded_crawl(
                POPULATION,
                out_dir=out,
                crawler_name=spec.crawler_name,
                seed=spec.seed + 1,
                instances=spec.instances,
                config=spec.config,
                shard_size=7,
            )

    def test_manifest_rejects_a_different_plan(self, tmp_path):
        out = tmp_path / "sharded"
        run_sharded(out, max_shards=1)
        with pytest.raises(ManifestError):
            run_sharded(out, shard_size=5)


class TestObsDirectorySupport:
    @pytest.fixture(scope="class")
    def sharded_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("sharded-obs")
        assert run_sharded(out, jobs=1).complete
        return out

    def test_report_accepts_a_shard_directory(self, sharded_dir, capsys):
        from repro.obs.cli import main as obs_main

        assert obs_main(["report", str(sharded_dir)]) == 0
        from_dir = capsys.readouterr().out
        assert obs_main(["report", str(sharded_dir / "crawl.trace.jsonl")]) == 0
        from_file = capsys.readouterr().out
        assert from_dir == from_file

    def test_diff_shard_dir_against_serial_trace(
        self, sharded_dir, serial_dir, capsys
    ):
        from repro.obs.cli import main as obs_main

        code = obs_main(
            ["diff", str(sharded_dir), str(serial_dir / "crawl.trace.jsonl")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "identical: yes" in out

    def test_diff_ledger_kind(self, sharded_dir, serial_dir, capsys):
        from repro.obs.cli import main as obs_main

        code = obs_main(
            [
                "diff",
                str(sharded_dir),
                str(serial_dir / "crawl.ledger.jsonl"),
                "--kind",
                "ledger",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "identical: yes" in out

    def test_report_rejects_an_empty_directory(self, tmp_path, capsys):
        from repro.obs.cli import main as obs_main

        assert obs_main(["report", str(tmp_path)]) == 1


class TestShardCli:
    def test_verify_exits_zero(self, tmp_path, capsys):
        code = shard_main(
            [
                "--out",
                str(tmp_path / "out"),
                "--sites",
                "60",
                "--instances",
                "2",
                "--shard-size",
                "17",
                "--jobs",
                "2",
                "--fault-rate",
                "0.2",
                "--verify",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert '"status": "complete"' in out
        assert "verify ok" in out

    def test_interrupted_run_reports_resume_hint(self, tmp_path, capsys):
        args = [
            "--out",
            str(tmp_path / "out"),
            "--sites",
            "60",
            "--instances",
            "2",
            "--shard-size",
            "17",
        ]
        assert shard_main(args + ["--max-shards", "1"]) == 0
        out = capsys.readouterr().out
        assert '"status": "interrupted"' in out
        assert (tmp_path / "out" / "manifest.json").exists()
        assert shard_main(args) == 0
        assert '"status": "complete"' in capsys.readouterr().out


class TestShardArtifactLayout:
    def test_per_shard_files_are_zero_padded_plan_order(self, tmp_path):
        outcome = run_sharded(tmp_path / "sharded", jobs=1)
        for shard in outcome.plan.shards:
            paths = shard_paths(tmp_path / "sharded", shard.index)
            assert paths.checkpoint.exists()
            assert paths.trace.exists()
            assert paths.ledger.exists()
        names = sorted(
            p.name for p in (tmp_path / "sharded").glob("shard-*.trace.jsonl")
        )
        assert names == [
            f"shard-{i:04d}.trace.jsonl" for i in range(len(outcome.plan))
        ]
