"""HLISA's internal models: trajectories, clicks, typing, scrolling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Box, Point
from repro.models import (
    ClickParams,
    ScrollCadence,
    ScrollParams,
    TrajectoryParams,
    TypingParams,
    TypingRhythm,
    hlisa_click_point,
    hlisa_path,
    naive_bezier_path,
    straight_line_path,
    uniform_click_point,
)
from repro.models.clicks import hlisa_dwell_ms

coords = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)


class TestTrajectories:
    def test_straight_line_endpoints(self):
        path = straight_line_path(Point(0, 0), Point(100, 100), 250.0)
        assert path[0][1] == Point(0, 0)
        assert path[-1][1] == Point(100, 100)

    def test_straight_line_is_straight(self):
        path = straight_line_path(Point(0, 0), Point(300, 100), 250.0)
        for _, p in path:
            # Every point on the chord y = x/3.
            assert p.y == pytest.approx(p.x / 3.0, abs=1e-9)

    @given(coords, coords, coords, coords, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_hlisa_path_endpoints_exact(self, x1, y1, x2, y2, seed):
        rng = np.random.default_rng(seed)
        path = hlisa_path(Point(x1, y1), Point(x2, y2), rng)
        assert path[0][1].distance_to(Point(x1, y1)) < 1e-6
        assert path[-1][1].distance_to(Point(x2, y2)) < 1e-6

    @given(coords, coords, coords, coords, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_hlisa_path_time_monotone(self, x1, y1, x2, y2, seed):
        rng = np.random.default_rng(seed)
        path = hlisa_path(Point(x1, y1), Point(x2, y2), rng)
        times = [t for t, _ in path]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_hlisa_respects_min_duration(self):
        rng = np.random.default_rng(0)
        path = hlisa_path(Point(0, 0), Point(3, 0), rng)  # tiny distance
        assert path[-1][0] >= TrajectoryParams().min_duration_ms - 1e-6

    def test_naive_bezier_uniform_speed(self):
        rng = np.random.default_rng(1)
        path = naive_bezier_path(Point(0, 0), Point(800, 200), rng)
        points = [p for _, p in path]
        # Bézier parameter advances uniformly: consecutive gaps similar.
        gaps = [points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)]
        assert np.std(gaps) / np.mean(gaps) < 0.6  # no bell profile

    def test_hlisa_speed_profile_bell_shaped(self):
        rng = np.random.default_rng(2)
        path = hlisa_path(Point(0, 0), Point(900, 300), rng)
        points = [p for _, p in path]
        gaps = np.array(
            [points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)]
        )
        fifth = max(1, len(gaps) // 5)
        edge = np.concatenate([gaps[:fifth], gaps[-fifth:]]).mean()
        middle = gaps[fifth:-fifth].mean()
        assert edge < 0.6 * middle  # slow ends, fast middle

    def test_degenerate_same_point(self):
        rng = np.random.default_rng(3)
        path = hlisa_path(Point(5, 5), Point(5, 5), rng)
        assert path == [(0.0, Point(5, 5))]


class TestClickModels:
    BOX = Box(100, 100, 80, 40)

    def test_uniform_points_inside_box(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert self.BOX.contains(uniform_click_point(self.BOX, rng))

    def test_uniform_reaches_corners(self):
        rng = np.random.default_rng(0)
        points = [uniform_click_point(self.BOX, rng) for _ in range(500)]
        nx = [(p.x - self.BOX.center.x) / 40 for p in points]
        ny = [(p.y - self.BOX.center.y) / 20 for p in points]
        corner = [1 for a, b in zip(nx, ny) if abs(a) > 0.8 and abs(b) > 0.8]
        assert len(corner) > 5  # the naive tell-tale (Fig. 2)

    def test_hlisa_points_inside_box(self):
        rng = np.random.default_rng(1)
        for _ in range(300):
            assert self.BOX.contains(hlisa_click_point(self.BOX, rng))

    def test_hlisa_never_in_far_corners(self):
        rng = np.random.default_rng(1)
        points = [hlisa_click_point(self.BOX, rng) for _ in range(500)]
        for p in points:
            nx = abs(p.x - self.BOX.center.x) / 40
            ny = abs(p.y - self.BOX.center.y) / 20
            assert not (nx > 0.9 and ny > 0.9)

    def test_hlisa_rarely_exact_center(self):
        rng = np.random.default_rng(2)
        center = self.BOX.center
        exact = sum(
            1
            for _ in range(300)
            if hlisa_click_point(self.BOX, rng).distance_to(center) < 0.5
        )
        assert exact < 10

    def test_hlisa_scatter_is_gaussian_like(self):
        rng = np.random.default_rng(3)
        params = ClickParams(sigma_frac=0.25)
        xs = [
            (hlisa_click_point(self.BOX, rng, params).x - self.BOX.center.x) / 40
            for _ in range(800)
        ]
        assert abs(np.mean(xs)) < 0.05
        assert 0.15 < np.std(xs) < 0.35

    def test_dwell_positive_and_spread(self):
        rng = np.random.default_rng(4)
        dwells = [hlisa_dwell_ms(rng) for _ in range(200)]
        assert min(dwells) >= 20.0
        assert np.std(dwells) > 5.0


class TestTypingRhythm:
    def test_plan_types_text_in_order(self):
        rhythm = TypingRhythm(np.random.default_rng(0))
        plan = rhythm.plan("ab c")
        downs = [key for _, kind, key in plan if kind == "down" and key != "Shift"]
        assert downs == list("ab c")

    def test_every_down_has_matching_up(self):
        rhythm = TypingRhythm(np.random.default_rng(0))
        plan = rhythm.plan("Hello, World!")
        balance = {}
        for _, kind, key in plan:
            balance[key] = balance.get(key, 0) + (1 if kind == "down" else -1)
            assert balance[key] in (0, 1)
        assert all(v == 0 for v in balance.values())

    def test_shift_wraps_capitals(self):
        rhythm = TypingRhythm(np.random.default_rng(0))
        plan = rhythm.plan("aA")
        kinds = [(kind, key) for _, kind, key in plan]
        shift_down = kinds.index(("down", "Shift"))
        a_down = kinds.index(("down", "A"))
        shift_up = kinds.index(("up", "Shift"))
        assert shift_down < a_down < shift_up

    def test_sentence_pause_longer_than_plain_flight(self):
        params = TypingParams(pause_sd_frac=0.0, flight_sd_ms=0.0)
        rhythm = TypingRhythm(np.random.default_rng(1), params)
        plan_plain = rhythm.plan("ab")
        plan_sentence = rhythm.plan(".b")
        flight_plain = plan_plain[2][0]  # dt of 'b' down
        flight_sentence = plan_sentence[2][0]
        assert flight_sentence > flight_plain + 500

    def test_all_dts_non_negative(self):
        rhythm = TypingRhythm(np.random.default_rng(2))
        for dt, _, _ in rhythm.plan("The quick brown Fox, jumped. Twice!"):
            assert dt >= 0


class TestScrollCadence:
    def test_covers_distance(self):
        cadence = ScrollCadence(np.random.default_rng(0))
        ticks = cadence.plan(1000.0)
        assert sum(d for _, d in ticks) >= 1000.0

    def test_tick_size_is_57(self):
        cadence = ScrollCadence(np.random.default_rng(0))
        for _, delta in cadence.plan(500.0):
            assert abs(delta) == 57.0

    def test_direction_follows_sign(self):
        cadence = ScrollCadence(np.random.default_rng(0))
        assert all(d < 0 for _, d in cadence.plan(-500.0))

    def test_zero_distance_empty(self):
        cadence = ScrollCadence(np.random.default_rng(0))
        assert cadence.plan(0) == []

    def test_has_long_breaks(self):
        cadence = ScrollCadence(np.random.default_rng(1), ScrollParams())
        pauses = [p for p, _ in cadence.plan(57.0 * 60)][1:]
        long_pauses = [p for p in pauses if p > 200.0]
        assert long_pauses  # finger repositioning happened
        assert len(long_pauses) < len(pauses) / 2  # but is the minority
