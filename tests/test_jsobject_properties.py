"""Property-based tests on the JS object model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.jsobject import (
    JSObject,
    PropertyDescriptor,
    UNDEFINED,
    for_in_names,
    get_own_property_names,
    object_keys,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)
values = st.one_of(st.integers(), st.booleans(), st.text(max_size=5), st.none())


@given(st.lists(st.tuples(names, values), max_size=20))
def test_insertion_order_preserved(pairs):
    """Own-property enumeration is first-insertion order (string keys)."""
    obj = JSObject()
    expected_order = []
    for name, value in pairs:
        if name not in expected_order:
            expected_order.append(name)
        obj.set(name, value)
    assert get_own_property_names(obj) == expected_order


@given(st.lists(st.tuples(names, values), max_size=20))
def test_last_write_wins(pairs):
    obj = JSObject()
    expected = {}
    for name, value in pairs:
        obj.set(name, value)
        expected[name] = value
    for name, value in expected.items():
        assert obj.get(name) == value


@given(st.lists(names, min_size=1, max_size=15), st.data())
def test_object_keys_subset_of_own_names(keys, data):
    obj = JSObject()
    for name in keys:
        enumerable = data.draw(st.booleans())
        obj.define_property(
            name, PropertyDescriptor.data(1, enumerable=enumerable)
        )
    assert set(object_keys(obj)) <= set(get_own_property_names(obj))


@given(st.lists(st.tuples(names, values), max_size=10), st.lists(st.tuples(names, values), max_size=10))
def test_for_in_no_duplicates(own_pairs, proto_pairs):
    proto = JSObject()
    for name, value in proto_pairs:
        proto.set(name, value)
    obj = JSObject(proto=proto)
    for name, value in own_pairs:
        obj.set(name, value)
    listing = for_in_names(obj)
    assert len(listing) == len(set(listing))


@given(st.lists(st.tuples(names, values), max_size=10))
def test_delete_then_get_is_undefined(pairs):
    obj = JSObject()
    for name, value in pairs:
        obj.set(name, value)
    for name, _ in pairs:
        obj.delete(name)
        assert obj.get(name) is UNDEFINED


@settings(max_examples=50)
@given(st.lists(st.tuples(names, values), min_size=1, max_size=10))
def test_shadowing_never_mutates_prototype(pairs):
    proto = JSObject()
    for name, value in pairs:
        proto.set(name, value)
    snapshot = {n: proto.get(n) for n, _ in pairs}
    obj = JSObject(proto=proto)
    for name, _ in pairs:
        obj.set(name, "shadow")
    for name, value in snapshot.items():
        assert proto.get(name) == value
