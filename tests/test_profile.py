"""repro.obs profile/flame: the deterministic profiler and its exports.

The acceptance criterion lives here: the canonical profile JSON of a
same-seed serial run, an interrupted-then-resumed run (cut at *every*
site boundary) and a ``--jobs 2`` sharded run's merged directory are
byte-identical.
"""

import json

import pytest

from repro.clock import VirtualClock
from repro.crawl import (
    PopulationConfig,
    SupervisorConfig,
    generate_population,
)
from repro.faults import FaultPlan
from repro.obs import (
    Tracer,
    build_profile,
    chrome_trace_document,
    hotspots,
    nearest_rank,
    profile_delta,
    profile_to_json,
    read_trace,
    speedscope_document,
    write_speedscope,
    write_trace,
)
from repro.obs.cli import main as obs_main
from repro.obs.flame import SPEEDSCOPE_SCHEMA
from repro.obs.merge import merge_trace_dir
from repro.obs.profile import (
    PROFILE_SCHEMA,
    render_delta_text,
    render_profile_text,
)
from repro.shard import ShardRunSpec, build_supervisor, run_sharded_crawl


def small_population(n=10, seed=3):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=1,
            n_captcha_detectors=1,
            n_freeze_video_detectors=0,
            n_other_signal_ad_detectors=0,
            n_side_effect_blockers=1,
            n_http_only_detectors=2,
        )
    )


POPULATION = small_population()


def make_spec():
    return ShardRunSpec(
        crawler_name="supervised",
        seed=7,
        instances=3,
        with_extension=True,
        config=SupervisorConfig(
            recycle_after_faults=2, checkpoint_every_sites=3
        ),
        fault_plan=FaultPlan.generate(POPULATION, 3, rate=0.3, seed=11),
        ledger=False,
        watchdogs="default",
    )


@pytest.fixture(scope="module")
def serial_spans(tmp_path_factory):
    out = tmp_path_factory.mktemp("profile-serial")
    trace = out / "crawl.trace.jsonl"
    build_supervisor(make_spec()).crawl(POPULATION, trace_path=trace)
    return read_trace(trace)


def hand_trace(get_scale=1.0):
    """Two visits with known durations, for exact-value assertions.

    At scale 1: crawl[0..47] > visit a[0..13] > get[2..12]; visit
    b[13..47] > get[17..47] -- crawl self 0, visit selfs 3 and 4, get
    selfs 10 and 30.  ``get_scale`` stretches only the get spans.
    """
    clock = VirtualClock()
    tracer = Tracer(clock)
    crawl = tracer.start("crawl")
    first = tracer.start("visit", domain="a.example")
    clock.advance(2.0)
    get = tracer.start("webdriver.get")
    clock.advance(10.0 * get_scale)
    tracer.end(get)
    clock.advance(1.0)
    tracer.end(first)
    second = tracer.start("visit", domain="b.example")
    clock.advance(4.0)
    get = tracer.start("webdriver.get")
    clock.advance(30.0 * get_scale)
    tracer.end(get)
    tracer.end(second)
    tracer.end(crawl)
    return tracer.spans


class TestBuildProfile:
    def test_self_total_and_counts(self):
        profile = build_profile(hand_trace())
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["total_ms"] == 47.0
        assert profile["span_count"] == 5
        assert profile["visits"] == 2
        names = profile["names"]
        assert names["crawl"]["total_ms"] == 47.0
        assert names["crawl"]["self_ms"] == 0.0
        assert names["visit"]["count"] == 2
        assert names["visit"]["total_ms"] == 47.0
        assert names["visit"]["self_ms"] == 7.0
        assert names["visit"]["max_ms"] == 34.0
        assert names["webdriver.get"]["self_ms"] == 40.0

    def test_per_visit_percentiles_are_observed_values(self):
        names = build_profile(hand_trace())["names"]
        visit = names["visit"]["per_visit"]
        assert visit["visits"] == 2
        assert visit["p50_ms"] == 13.0
        assert visit["p95_ms"] == 34.0
        get = names["webdriver.get"]["per_visit"]
        assert get["p50_ms"] == 10.0
        # crawl never appears inside a visit subtree
        assert names["crawl"]["per_visit"]["visits"] == 0

    def test_critical_path_follows_heaviest_children(self):
        critical = build_profile(hand_trace())["critical_path"]
        assert critical["domain"] == "b.example"
        assert critical["duration_ms"] == 34.0
        assert [step["name"] for step in critical["path"]] == [
            "visit",
            "webdriver.get",
        ]
        assert critical["path"][0]["self_ms"] == 4.0
        assert critical["path"][1]["total_ms"] == 30.0

    def test_empty_trace(self):
        profile = build_profile([])
        assert profile["total_ms"] == 0.0
        assert profile["names"] == {}
        assert profile["critical_path"] is None

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(values, 0.5) == 2.0
        assert nearest_rank(values, 0.51) == 3.0
        assert nearest_rank(values, 1.0) == 4.0
        assert nearest_rank([], 0.5) == 0.0
        with pytest.raises(ValueError):
            nearest_rank(values, 0.0)
        with pytest.raises(ValueError):
            nearest_rank(values, 1.5)

    def test_hotspots_rank_by_self_time(self):
        ranked = hotspots(build_profile(hand_trace()), top=2)
        assert [spot["name"] for spot in ranked] == ["webdriver.get", "visit"]
        assert hotspots(build_profile(hand_trace()), top=0) == hotspots(
            build_profile(hand_trace()), top=99
        )

    def test_profile_delta_sorted_by_movement(self):
        profile_a = build_profile(hand_trace())
        profile_b = build_profile(hand_trace(get_scale=2.0))
        deltas = profile_delta(profile_a, profile_b)
        assert deltas[0]["name"] == "webdriver.get"
        assert deltas[0]["delta_ms"] == 40.0
        assert deltas[0]["ratio"] == 2.0
        by_name = {d["name"]: d for d in deltas}
        assert by_name["visit"]["delta_ms"] == 0.0
        assert by_name["crawl"]["ratio"] is None  # zero self time on a


class TestCanonicalSerialisation:
    def test_sorted_keys_fixed_separators_trailing_newline(self):
        text = profile_to_json(build_profile(hand_trace()))
        assert text.endswith("\n")
        data = json.loads(text)
        assert text == json.dumps(
            data, sort_keys=True, separators=(",", ":")
        ) + "\n"

    def test_text_rendering_mentions_the_load_bearing_parts(self):
        text = render_profile_text(build_profile(hand_trace()), top=5)
        assert "crawl profile" in text
        assert "hotspots by self time" in text
        assert "critical path of the slowest visit" in text
        assert "b.example" in text

    def test_delta_rendering(self):
        deltas = profile_delta(
            build_profile(hand_trace()),
            build_profile(hand_trace(get_scale=2.0)),
        )
        text = render_delta_text(deltas, top=3)
        assert "hotspot deltas" in text and "webdriver.get" in text
        assert "(no spans on either side)" in render_delta_text([], top=3)


class TestDualClock:
    def make_wall_clock(self, step=0.001):
        state = {"now": 0.0}

        def wall_clock():
            state["now"] += step
            return state["now"]

        return wall_clock

    def dual_spans(self):
        clock = VirtualClock()
        tracer = Tracer(clock, wall_clock=self.make_wall_clock())
        span = tracer.start("visit", domain="a.example")
        clock.advance(5.0)
        tracer.end(span)
        return tracer.spans

    def test_spans_carry_wall_deltas(self):
        (span,) = self.dual_spans()
        assert span.wall_ms is not None and span.wall_ms > 0.0

    def test_wall_deltas_stay_out_of_canonical_exports(self):
        spans = self.dual_spans()
        assert "wall_ms" not in spans[0].to_dict()
        assert spans[0].to_dict_dual()["wall_ms"] == spans[0].wall_ms
        profile = build_profile(spans, include_wall=True)
        assert profile["wall"]["visit"]["count"] == 1
        assert "wall" not in json.loads(profile_to_json(profile))
        kept = json.loads(profile_to_json(profile, include_wall=True))
        assert "wall" in kept

    def test_dual_trace_round_trips_through_jsonl(self, tmp_path):
        spans = self.dual_spans()
        path = tmp_path / "dual.jsonl"
        write_trace(path, spans, dual=True)
        loaded = read_trace(path)
        assert loaded[0].wall_ms == spans[0].wall_ms
        # the default (canonical) export drops the wall column entirely
        write_trace(path, spans)
        assert read_trace(path)[0].wall_ms is None


class TestFlameExports:
    def test_speedscope_required_keys(self):
        doc = speedscope_document(hand_trace())
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["activeProfileIndex"] == 0
        assert [f["name"] for f in doc["shared"]["frames"]] == sorted(
            {"crawl", "visit", "webdriver.get"}
        )
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        assert profile["unit"] == "milliseconds"
        assert profile["startValue"] == 0.0
        assert profile["endValue"] == 47.0
        assert profile["events"]

    def test_speedscope_events_are_well_nested(self):
        (profile,) = speedscope_document(hand_trace())["profiles"]
        stack = []
        last_at = 0.0
        for event in profile["events"]:
            assert event["at"] >= last_at
            last_at = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack and stack.pop() == event["frame"]
        assert stack == []

    def test_chrome_trace_microseconds(self):
        doc = chrome_trace_document(hand_trace())
        assert doc["displayTimeUnit"] == "ms"
        by_name = {}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            by_name.setdefault(event["name"], event)
        assert by_name["crawl"]["ts"] == 0.0
        assert by_name["crawl"]["dur"] == 47_000.0


class TestByteIdentity:
    """The tentpole contract: one profile, however the crawl ran."""

    def test_resumed_profiles_byte_identical(self, tmp_path, serial_spans):
        expected = profile_to_json(build_profile(serial_spans))
        for cut in range(1, len(POPULATION)):
            checkpoint = tmp_path / f"ck-{cut}.json"
            build_supervisor(make_spec()).crawl(
                POPULATION[:cut], checkpoint_path=checkpoint
            )
            trace = tmp_path / f"resumed-{cut}.trace.jsonl"
            build_supervisor(make_spec()).crawl(
                POPULATION, checkpoint_path=checkpoint, trace_path=trace
            )
            resumed = profile_to_json(build_profile(read_trace(trace)))
            assert resumed == expected, f"profile diverges at cut {cut}"

    def test_sharded_profile_byte_identical(self, tmp_path, serial_spans):
        spec = make_spec()
        out = tmp_path / "sharded"
        run_sharded_crawl(
            POPULATION,
            out_dir=out,
            crawler_name=spec.crawler_name,
            seed=spec.seed,
            instances=spec.instances,
            with_extension=spec.with_extension,
            config=spec.config,
            fault_plan=spec.fault_plan,
            ledger=spec.ledger,
            watchdogs=spec.watchdogs,
            shard_size=4,
            jobs=2,
        )
        merged = merge_trace_dir(out)
        assert profile_to_json(build_profile(merged)) == profile_to_json(
            build_profile(serial_spans)
        )
        # the human-facing flame export inherits the same identity
        serial_scope = write_speedscope(tmp_path / "serial.speedscope.json",
                                        serial_spans)
        merged_scope = write_speedscope(tmp_path / "merged.speedscope.json",
                                        merged)
        assert serial_scope.read_bytes() == merged_scope.read_bytes()


class TestProfileCli:
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, hand_trace())
        return path

    def test_text_profile_to_stdout(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert obs_main(["profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "crawl profile" in out and "critical path" in out

    def test_json_profile_is_canonical(self, tmp_path):
        path = self.trace_file(tmp_path)
        out = tmp_path / "profile.json"
        assert (
            obs_main(
                ["profile", str(path), "--format", "json", "--out", str(out)]
            )
            == 0
        )
        assert out.read_text() == profile_to_json(build_profile(hand_trace()))

    def test_side_exports(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        scope = tmp_path / "out.speedscope.json"
        chrome = tmp_path / "out.chrome.json"
        assert (
            obs_main(
                [
                    "profile",
                    str(path),
                    "--speedscope",
                    str(scope),
                    "--chrome",
                    str(chrome),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(scope.read_text())["$schema"] == SPEEDSCOPE_SCHEMA
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_wall_mode_shows_wall_totals(self, tmp_path, capsys):
        clock = VirtualClock()
        state = {"now": 0.0}

        def wall_clock():
            state["now"] += 0.002
            return state["now"]

        tracer = Tracer(clock, wall_clock=wall_clock)
        span = tracer.start("visit", domain="a.example")
        clock.advance(3.0)
        tracer.end(span)
        path = tmp_path / "dual.jsonl"
        write_trace(path, tracer.spans, dual=True)
        assert obs_main(["profile", str(path), "--wall"]) == 0
        assert "wall-time totals" in capsys.readouterr().out

    def test_profile_of_shard_directory(self, tmp_path, capsys):
        # two fake shard files; the dir loader merges before profiling
        spans = hand_trace()
        write_trace(tmp_path / "shard-0000.trace.jsonl", spans)
        write_trace(tmp_path / "shard-0001.trace.jsonl", spans)
        assert obs_main(["profile", str(tmp_path)]) == 0
        assert "crawl profile" in capsys.readouterr().out

    def test_profile_of_plain_trace_directory(self, tmp_path):
        # the README one-liner: a field_study output dir (no shard-*
        # files) splices its *.trace.jsonl traces end to end
        write_trace(tmp_path / "OpenWPM-extension.trace.jsonl", hand_trace())
        write_trace(tmp_path / "OpenWPM.trace.jsonl", hand_trace())
        json_out = tmp_path / "profile.json"
        assert (
            obs_main(
                ["profile", str(tmp_path), "--format", "json", "--out",
                 str(json_out)]
            )
            == 0
        )
        data = json.loads(json_out.read_text())
        assert data["visits"] == 4  # two traces x two visits, spliced
        assert data["total_ms"] == 94.0

    def test_empty_directory_errors(self, tmp_path, capsys):
        assert obs_main(["profile", str(tmp_path)]) == 1
        assert "no shard-*.trace.jsonl" in capsys.readouterr().err

    def test_missing_trace_errors(self, tmp_path, capsys):
        assert obs_main(["profile", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_report_profile_flag(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert obs_main(["report", str(path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "crawl report" in out and "crawl profile" in out
        json_out = tmp_path / "report.json"
        assert (
            obs_main(
                [
                    "report",
                    str(path),
                    "--profile",
                    "--format",
                    "json",
                    "--out",
                    str(json_out),
                ]
            )
            == 0
        )
        data = json.loads(json_out.read_text())
        assert data["profile"]["schema"] == PROFILE_SCHEMA

    def test_report_top_ranks_hotspots(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert obs_main(["report", str(path), "--top", "2"]) == 0
        assert "hotspots by self time (top 2)" in capsys.readouterr().out

    def test_diff_profile_shows_hotspot_deltas(self, tmp_path, capsys):
        path_a = self.trace_file(tmp_path)
        path_b = tmp_path / "b.jsonl"
        write_trace(path_b, hand_trace())
        assert obs_main(["diff", str(path_a), str(path_b), "--profile"]) == 0
        assert "hotspot deltas" in capsys.readouterr().out

    def test_diff_profile_json_embeds_deltas(self, tmp_path, capsys):
        path_a = self.trace_file(tmp_path)
        out = tmp_path / "diff.json"
        assert (
            obs_main(
                [
                    "diff",
                    str(path_a),
                    str(path_a),
                    "--profile",
                    "--format",
                    "json",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        data = json.loads(out.read_text())
        assert all(d["delta_ms"] == 0.0 for d in data["profile_delta"])

    def test_diff_profile_rejects_ledgers(self, tmp_path, capsys):
        from repro.obs import LedgerEntry, ledger_to_jsonl

        ledger = tmp_path / "x.ledger.jsonl"
        ledger.write_text(
            ledger_to_jsonl(
                [LedgerEntry(1, 0.0, "", "navigator.__proto__", "get")]
            )
        )
        assert (
            obs_main(
                ["diff", str(ledger), str(ledger), "--kind", "ledger",
                 "--profile"]
            )
            == 2
        )
        assert "only applies to trace diffs" in capsys.readouterr().err
