"""The Firefox-like navigator object."""

import pytest

from repro.browser.navigator import (
    NAVIGATOR_ATTRIBUTES,
    NAVIGATOR_METHODS,
    NavigatorProfile,
    make_navigator,
)
from repro.jsobject import (
    JSTypeError,
    for_in_names,
    get_own_property_names,
    object_keys,
)


class TestProfile:
    def test_defaults_are_firefox_like(self):
        profile = NavigatorProfile()
        assert "Firefox" in profile.user_agent
        assert "Gecko" in profile.user_agent
        assert profile.webdriver is False

    def test_automated_copy(self):
        profile = NavigatorProfile()
        auto = profile.automated()
        assert auto.webdriver is True
        assert profile.webdriver is False  # original untouched
        assert auto.user_agent == profile.user_agent


class TestStructure:
    def test_instance_has_no_own_properties(self):
        """All attributes live on the prototype, as in Firefox --
        Object.keys(navigator) is empty."""
        nav = make_navigator()
        assert get_own_property_names(nav) == []
        assert object_keys(nav) == []

    def test_prototype_holds_all_attributes_in_order(self):
        nav = make_navigator()
        names = [name for name, _ in NAVIGATOR_ATTRIBUTES]
        proto_names = get_own_property_names(nav.proto)
        assert proto_names[: len(names)] == names

    def test_for_in_yields_canonical_order(self):
        nav = make_navigator()
        expected = [name for name, _ in NAVIGATOR_ATTRIBUTES] + list(NAVIGATOR_METHODS)
        assert for_in_names(nav) == expected

    def test_webdriver_enumerable(self):
        nav = make_navigator()
        assert "webdriver" in for_in_names(nav)

    def test_fresh_chain_per_navigator(self):
        """Spoofing one navigator's prototype must not leak into another."""
        a, b = make_navigator(), make_navigator()
        assert a.proto is not b.proto


class TestValues:
    def test_attribute_values_come_from_profile(self):
        profile = NavigatorProfile(user_agent="UA-test", hardware_concurrency=4)
        nav = make_navigator(profile)
        assert nav.get("userAgent") == "UA-test"
        assert nav.get("hardwareConcurrency") == 4

    def test_webdriver_flag(self):
        assert make_navigator(NavigatorProfile(webdriver=True)).get("webdriver") is True
        assert make_navigator(NavigatorProfile(webdriver=False)).get("webdriver") is False

    def test_methods_callable_on_instance(self):
        nav = make_navigator()
        assert nav.get("javaEnabled").call(nav) is False
        assert nav.get("sendBeacon").call(nav) is True

    def test_to_string_via_object_prototype(self):
        nav = make_navigator()
        to_string = nav.get("toString")
        assert to_string.call(nav) == "[object Navigator]"
        assert to_string.to_string().startswith("function toString()")


class TestBrandChecks:
    def test_prototype_getter_throws_on_prototype_receiver(self):
        """Firefox: Navigator.prototype.webdriver throws a TypeError --
        the observable spoofing method 3 cannot preserve (Table 1)."""
        nav = make_navigator()
        with pytest.raises(JSTypeError):
            nav.proto.get("webdriver", receiver=nav.proto)

    def test_getter_works_on_real_instance(self):
        nav = make_navigator()
        assert isinstance(nav.get("webdriver"), bool)

    def test_method_brand_check(self):
        nav = make_navigator()
        fn = nav.get("javaEnabled")
        with pytest.raises(JSTypeError):
            fn.call(make_plain_object())


def make_plain_object():
    from repro.jsobject import JSObject

    return JSObject()
