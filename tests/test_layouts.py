"""Keyboard layouts, layout-aware typing, and layout inference."""

import numpy as np
import pytest

from repro.browser.navigator import NavigatorProfile
from repro.detection.layout import (
    LayoutLanguageMismatchDetector,
    infer_layout_from_recording,
    observe_modifier_usage,
)
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.experiment.session import Session
from repro.geometry import Box
from repro.models.layouts import (
    ALTGR,
    DE_LAYOUT,
    DISCRIMINATING_CHARS,
    PLAIN,
    SHIFT,
    US_LAYOUT,
    infer_layout,
)
from repro.models.typing_rhythm import TypingRhythm

#: Text rich in layout-discriminating characters.
PROBE_TEXT = "path/to/file; user@example.org = {ok}?"


def typed_recording(layout, language="en-US", text=PROBE_TEXT):
    profile = NavigatorProfile(webdriver=True, language=language)
    session = Session(automated=True)
    session.window.navigator.slots["language"] = language
    area = session.document.create_element("textarea", Box(100, 100, 400, 120))
    session.document.set_focus(area)
    rhythm = TypingRhythm(np.random.default_rng(1), layout=layout)
    for dt, kind, key in rhythm.plan(text):
        session.clock.advance(max(dt, 0.0))
        if kind == "down":
            session.pipeline.key_down(key)
        else:
            session.pipeline.key_up(key)
    return session, area


class TestLayoutTables:
    def test_us_conventions(self):
        assert US_LAYOUT.modifier_for("a") == PLAIN
        assert US_LAYOUT.modifier_for("A") == SHIFT
        assert US_LAYOUT.modifier_for("@") == SHIFT
        assert US_LAYOUT.modifier_for("/") == PLAIN
        assert US_LAYOUT.modifier_for(";") == PLAIN

    def test_de_conventions(self):
        assert DE_LAYOUT.modifier_for("a") == PLAIN
        assert DE_LAYOUT.modifier_for("A") == SHIFT
        assert DE_LAYOUT.modifier_for("@") == ALTGR
        assert DE_LAYOUT.modifier_for("/") == SHIFT
        assert DE_LAYOUT.modifier_for(";") == SHIFT
        assert DE_LAYOUT.modifier_for("{") == ALTGR

    def test_discriminating_chars_nonempty(self):
        assert "@" in DISCRIMINATING_CHARS
        assert "/" in DISCRIMINATING_CHARS
        assert "a" not in DISCRIMINATING_CHARS

    def test_special_keys_plain(self):
        assert US_LAYOUT.modifier_for("Enter") == PLAIN


class TestInference:
    def test_infer_us_from_observations(self):
        observations = {"@": SHIFT, "/": PLAIN, ";": PLAIN}
        assert infer_layout(observations) is US_LAYOUT

    def test_infer_de_from_observations(self):
        observations = {"@": ALTGR, "/": SHIFT, "=": SHIFT}
        assert infer_layout(observations) is DE_LAYOUT

    def test_no_discriminating_chars_is_none(self):
        assert infer_layout({"a": PLAIN, "B": SHIFT}) is None


class TestEndToEnd:
    def test_us_typing_inferred_as_us(self):
        session, area = typed_recording(US_LAYOUT)
        assert infer_layout_from_recording(session.recorder) is US_LAYOUT

    def test_de_typing_inferred_as_de(self):
        session, area = typed_recording(DE_LAYOUT)
        assert infer_layout_from_recording(session.recorder) is DE_LAYOUT

    def test_text_arrives_identically_on_both_layouts(self):
        _, us_area = typed_recording(US_LAYOUT)
        _, de_area = typed_recording(DE_LAYOUT)
        assert us_area.value == de_area.value == PROBE_TEXT

    def test_modifier_usage_reconstruction(self):
        session, _ = typed_recording(DE_LAYOUT)
        usage = observe_modifier_usage(session.recorder)
        assert usage["@"] == ALTGR
        assert usage["/"] == SHIFT
        assert usage["a"] == PLAIN


class TestMismatchDetector:
    def test_consistent_us_english_passes(self):
        session, _ = typed_recording(US_LAYOUT, language="en-US")
        detector = LayoutLanguageMismatchDetector(session.window)
        assert not detector.observe(session.recorder).is_bot

    def test_consistent_de_german_passes(self):
        session, _ = typed_recording(DE_LAYOUT, language="de-DE")
        detector = LayoutLanguageMismatchDetector(session.window)
        assert not detector.observe(session.recorder).is_bot

    def test_german_language_us_typing_flagged(self):
        """The simulator forgot to match its typing model to its
        spoofed Accept-Language -- the cross-check catches it."""
        session, _ = typed_recording(US_LAYOUT, language="de-DE")
        detector = LayoutLanguageMismatchDetector(session.window)
        verdict = detector.observe(session.recorder)
        assert verdict.is_bot
        assert "keyboard layout" in verdict.reasons[0]

    def test_english_language_de_typing_flagged(self):
        session, _ = typed_recording(DE_LAYOUT, language="en-US")
        detector = LayoutLanguageMismatchDetector(session.window)
        assert detector.observe(session.recorder).is_bot

    def test_no_discriminating_typing_yields_no_verdict(self):
        session, _ = typed_recording(US_LAYOUT, language="de-DE", text="hello there")
        detector = LayoutLanguageMismatchDetector(session.window)
        assert not detector.observe(session.recorder).is_bot
