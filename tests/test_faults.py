"""Fault taxonomy, plans, injector hooks, and recovery primitives."""

import numpy as np
import pytest

from repro.crawl import PopulationConfig, generate_population
from repro.faults import (
    BackoffPolicy,
    BreakerState,
    CircuitBreaker,
    DriverCrashFault,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultType,
    ScheduledFault,
    StaleElementFault,
    make_fault,
)
from repro.webdriver import (
    InvalidSessionIdException,
    StaleElementReferenceException,
    TimeoutException,
    WebDriverException,
    make_browser_driver,
)


def small_population(n=60, seed=3):
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=1,
            n_less_ads_detectors=1,
            n_block_detectors=1,
            n_captcha_detectors=1,
            n_freeze_video_detectors=1,
            n_other_signal_ad_detectors=1,
            n_side_effect_blockers=1,
            n_http_only_detectors=3,
        )
    )


class TestFaultTypes:
    def test_every_type_has_a_hook_and_exception(self):
        for fault_type in FaultType:
            assert fault_type.hook in {"visit", "get", "find_element", "execute_script"}
            error = make_fault(fault_type, "a.example", 0, 0)
            assert isinstance(error, FaultError)
            assert error.fault_type is fault_type

    def test_exceptions_are_also_webdriver_errors(self):
        assert issubclass(DriverCrashFault, InvalidSessionIdException)
        assert issubclass(StaleElementFault, StaleElementReferenceException)
        timeout = make_fault(FaultType.PAGE_LOAD_TIMEOUT, "a.example", 1, 2)
        assert isinstance(timeout, TimeoutException)
        assert isinstance(timeout, WebDriverException)

    def test_fatal_and_budget_classification(self):
        fatal = {t for t in FaultType if t.browser_fatal}
        assert fatal == {FaultType.DRIVER_CRASH, FaultType.OOM_RESTART}
        budget = {t for t in FaultType if t.exhausts_budget}
        assert budget == {FaultType.PAGE_LOAD_TIMEOUT, FaultType.DRIVER_HANG}

    def test_fault_carries_context(self):
        error = make_fault(FaultType.NETWORK_RESET, "b.example", 3, 1)
        assert error.domain == "b.example"
        assert error.visit_index == 3
        assert error.attempt == 1
        assert "network-reset" in str(error)


class TestFaultPlan:
    def test_deterministic_for_seed(self):
        population = small_population()
        a = FaultPlan.generate(population, 4, rate=0.1, seed=42)
        b = FaultPlan.generate(population, 4, rate=0.1, seed=42)
        assert a.schedule == b.schedule
        assert len(a) > 0

    def test_different_seed_different_plan(self):
        population = small_population()
        a = FaultPlan.generate(population, 4, rate=0.1, seed=42)
        b = FaultPlan.generate(population, 4, rate=0.1, seed=43)
        assert a.schedule != b.schedule

    def test_rate_zero_schedules_nothing(self):
        plan = FaultPlan.generate(small_population(), 4, rate=0.0, seed=1)
        assert len(plan) == 0

    def test_rate_one_faults_everything(self):
        population = small_population(n=24)
        plan = FaultPlan.generate(population, 2, rate=1.0, seed=1)
        assert len(plan) == 24 * 2

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(small_population(n=5), 1, rate=1.5, seed=1)

    def test_fault_for_respects_attempts_affected(self):
        plan = FaultPlan(seed=0, rate=1.0)
        plan.schedule[("a.example", 0)] = ScheduledFault(
            "a.example", 0, FaultType.DRIVER_CRASH, attempts_affected=2
        )
        assert plan.fault_for("a.example", 0, 0) is not None
        assert plan.fault_for("a.example", 0, 1) is not None
        assert plan.fault_for("a.example", 0, 2) is None
        assert plan.fault_for("other.example", 0, 0) is None

    def test_fault_counts_by_taxonomy(self):
        plan = FaultPlan.generate(small_population(), 8, rate=0.5, seed=7)
        counts = plan.fault_counts()
        assert sum(counts.values()) == len(plan)
        assert set(counts) <= {t.value for t in FaultType}


class TestFaultInjectorHooks:
    def _injector(self, fault_type, attempts=1):
        plan = FaultPlan(seed=0, rate=1.0)
        plan.schedule[("hook.example", 0)] = ScheduledFault(
            "hook.example", 0, fault_type, attempts_affected=attempts
        )
        return FaultInjector(plan)

    def test_disarmed_injector_is_inert(self):
        injector = self._injector(FaultType.PAGE_LOAD_TIMEOUT)
        driver = make_browser_driver()
        driver.fault_injector = injector
        driver.get("https://hook.example/")  # no arm -> no fault
        assert injector.fired == []

    def test_get_hook_raises_page_load_timeout(self):
        injector = self._injector(FaultType.PAGE_LOAD_TIMEOUT)
        driver = make_browser_driver()
        driver.fault_injector = injector
        injector.arm("hook.example", 0, 0)
        with pytest.raises(TimeoutException):
            driver.get("https://hook.example/")
        assert injector.fired[0].hook == "get"

    def test_find_element_hook_raises_stale_element(self):
        injector = self._injector(FaultType.STALE_ELEMENT)
        driver = make_browser_driver()
        driver.fault_injector = injector
        injector.arm("hook.example", 0, 0)
        with pytest.raises(StaleElementReferenceException):
            driver.find_element("id", "submit")
        with pytest.raises(StaleElementReferenceException):
            driver.find_elements("tag name", "button")

    def test_execute_script_hook_raises_hang(self):
        injector = self._injector(FaultType.DRIVER_HANG)
        driver = make_browser_driver()
        driver.fault_injector = injector
        injector.arm("hook.example", 0, 0)
        with pytest.raises(TimeoutException):
            driver.execute_script("window.scrollTo(0, 0)")

    def test_wrong_hook_does_not_fire(self):
        injector = self._injector(FaultType.DRIVER_HANG)
        driver = make_browser_driver()
        driver.fault_injector = injector
        injector.arm("hook.example", 0, 0)
        driver.get("https://hook.example/")  # hang is an execute_script fault
        assert injector.fired == []

    def test_attempts_affected_exhausts(self):
        injector = self._injector(FaultType.NETWORK_RESET, attempts=1)
        driver = make_browser_driver()
        driver.fault_injector = injector
        injector.arm("hook.example", 0, 1)  # attempt 1: fault already spent
        driver.get("https://hook.example/")
        assert injector.fired == []


class TestBackoffPolicy:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base_delay_ms=100, factor=2, max_delay_ms=450, jitter=0)
        assert policy.delay_ms(0) == 100
        assert policy.delay_ms(1) == 200
        assert policy.delay_ms(2) == 400
        assert policy.delay_ms(3) == 450  # capped

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(base_delay_ms=1000, factor=1, jitter=0.2)
        delays_a = [policy.delay_ms(0, np.random.default_rng(5)) for _ in range(3)]
        delays_b = [policy.delay_ms(0, np.random.default_rng(5)) for _ in range(3)]
        assert delays_a == delays_b
        assert all(800 <= d <= 1200 for d in delays_a)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay_ms=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay_ms(-1)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=1000)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(500.0)

    def test_half_open_trial_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=1000)
        breaker.record_failure(0.0)
        assert not breaker.allow(999.0)
        assert breaker.allow(1000.0)  # half-open trial
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(1000.0)  # only one trial slot
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(1000.0)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=1000)
        breaker.record_failure(0.0)
        assert breaker.allow(1500.0)
        breaker.record_failure(1500.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(2000.0)
        assert breaker.allow(2500.0)  # cooldown counted from re-open

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=1000)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
