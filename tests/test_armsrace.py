"""The arms-race model (Fig. 3) and its empirical tournament."""

import pytest

from repro.armsrace import (
    GENERIC_SIMULATION_PROFILE,
    SimulatorLevel,
    Tournament,
    expected_detection,
    simulator_for_level,
)
from repro.armsrace.levels import HLISA_LEVEL
from repro.armsrace.simulators import ConsistentSimulatorAgent, ProfileSimulatorAgent
from repro.detection.base import DetectionLevel
from repro.humans.profile import HumanProfile


class TestModel:
    def test_hlisa_sits_at_human_distribution(self):
        """'HLISA ... is situated at the third level in the hierarchy.'"""
        assert HLISA_LEVEL is SimulatorLevel.HUMAN_DISTRIBUTION

    def test_expected_matrix_is_lower_triangular(self):
        for sim in SimulatorLevel:
            for det in DetectionLevel:
                assert expected_detection(sim, det) == (int(det) > int(sim))

    def test_hlisa_requires_consistency_tracking(self):
        """'consistently defeating HLISA requires tracking consistency of
        behaviour.'"""
        assert not expected_detection(HLISA_LEVEL, DetectionLevel.ARTIFICIAL)
        assert not expected_detection(HLISA_LEVEL, DetectionLevel.DEVIATION)
        assert expected_detection(HLISA_LEVEL, DetectionLevel.CONSISTENCY)

    def test_top_simulator_beats_all_interaction_detectors(self):
        for det in DetectionLevel:
            assert not expected_detection(SimulatorLevel.SPECIFIC_PROFILE, det)


class TestSimulators:
    def test_each_level_instantiates(self):
        subject = HumanProfile()
        for level in SimulatorLevel:
            agent = simulator_for_level(level, target_profile=subject)
            assert agent.automated or level is SimulatorLevel.UNLIMITED or True
            assert hasattr(agent, "click_element")

    def test_profile_level_requires_target(self):
        with pytest.raises(ValueError):
            simulator_for_level(SimulatorLevel.SPECIFIC_PROFILE)

    def test_impersonator_copies_parameters_not_seed(self):
        subject = HumanProfile()
        agent = ProfileSimulatorAgent(subject)
        assert agent.profile.fitts_b_ms == subject.fitts_b_ms
        assert agent.profile.seed != subject.seed

    def test_consistent_simulator_uses_generic_profile(self):
        agent = ConsistentSimulatorAgent()
        assert agent.profile is GENERIC_SIMULATION_PROFILE
        assert agent.automated is True

    def test_generic_profile_differs_from_default_subject(self):
        subject = HumanProfile()
        assert GENERIC_SIMULATION_PROFILE.fitts_b_ms != subject.fitts_b_ms
        assert GENERIC_SIMULATION_PROFILE.click_sigma_frac != subject.click_sigma_frac


class TestTournament:
    @pytest.fixture(scope="class")
    def result(self):
        return Tournament().run()

    def test_matrix_matches_fig3(self, result):
        """The headline claim: the empirical matrix equals the model's
        lower triangle and the human control is never flagged."""
        assert result.matches_model(), result.mismatches()

    def test_selenium_caught_at_level1(self, result):
        assert result.matrix[SimulatorLevel.UNLIMITED][DetectionLevel.ARTIFICIAL]

    def test_hlisa_evades_levels_1_and_2(self, result):
        row = result.matrix[SimulatorLevel.HUMAN_DISTRIBUTION]
        assert not row[DetectionLevel.ARTIFICIAL]
        assert not row[DetectionLevel.DEVIATION]

    def test_hlisa_caught_by_consistency(self, result):
        row = result.matrix[SimulatorLevel.HUMAN_DISTRIBUTION]
        assert row[DetectionLevel.CONSISTENCY]
        evidence = result.evidence[
            (SimulatorLevel.HUMAN_DISTRIBUTION, DetectionLevel.CONSISTENCY)
        ]
        assert any("coupling" in name for name in evidence)

    def test_consistent_simulator_needs_profile_detector(self, result):
        row = result.matrix[SimulatorLevel.CONSISTENT]
        assert not row[DetectionLevel.CONSISTENCY]
        assert row[DetectionLevel.PROFILE]

    def test_impersonator_beats_everything(self, result):
        row = result.matrix[SimulatorLevel.SPECIFIC_PROFILE]
        assert not any(row.values())

    def test_human_never_flagged(self, result):
        assert not any(result.human_flags.values())

    def test_format_matrix_renders(self, result):
        rendering = result.format_matrix()
        assert "HUMAN_DISTRIBUTION" in rendering
        assert "CONTROL" in rendering
