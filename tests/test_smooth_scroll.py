"""Firefox smooth scrolling (the paper's explicit future-work item)."""

import numpy as np
import pytest

from repro.analysis import scroll_metrics
from repro.browser.input_pipeline import InputPipeline
from repro.browser.window import Window
from repro.dom.document import Document
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS


def make_rig(smooth: bool):
    window = Window(Document(1366, 8000), smooth_scroll=smooth)
    pipeline = InputPipeline(window)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(window)
    return window, pipeline, recorder


class TestSmoothScrolling:
    def test_disabled_by_default(self):
        assert Window().smooth_scroll is False

    def test_instant_mode_one_scroll_event_per_tick(self):
        window, pipeline, recorder = make_rig(smooth=False)
        pipeline.wheel()
        assert len(recorder.scroll_events()) == 1
        assert window.scroll_y == 57.0

    def test_smooth_mode_animates_frames(self):
        window, pipeline, recorder = make_rig(smooth=True)
        pipeline.wheel()
        scrolls = recorder.scroll_events()
        assert len(scrolls) == Window.SMOOTH_SCROLL_FRAMES
        assert window.scroll_y == pytest.approx(57.0)

    def test_smooth_frames_ease_out(self):
        """Early frames cover more distance than late frames."""
        window, pipeline, recorder = make_rig(smooth=True)
        pipeline.wheel()
        offsets = [e.page_y for e in recorder.scroll_events()]
        steps = np.diff([0.0] + offsets)
        assert steps[0] > steps[-1]

    def test_smooth_frames_advance_clock(self):
        window, pipeline, _ = make_rig(smooth=True)
        before = window.clock.now()
        pipeline.wheel()
        assert window.clock.now() - before == pytest.approx(
            Window.SMOOTH_SCROLL_DURATION_MS
        )

    def test_smooth_scroll_clamped_at_bottom(self):
        window, pipeline, recorder = make_rig(smooth=True)
        window.scroll_to(0, window.max_scroll_y)
        recorder.clear()
        assert not window.smooth_scroll_by(0, 500)
        assert recorder.scroll_events() == []

    def test_wheel_event_count_unchanged(self):
        """Smooth scrolling changes scroll events, not wheel events --
        the wheel tick itself is still one event of 57 px."""
        window, pipeline, recorder = make_rig(smooth=True)
        pipeline.wheel()
        wheels = recorder.wheel_ticks()
        assert len(wheels) == 1
        assert wheels[0].delta_y == 57.0

    def test_scroll_step_signature_differs(self):
        """With smooth scrolling on, per-event steps are fractions of a
        tick -- a consistency signal a refined detector could use against
        tick-jump simulators on smooth-scrolling profiles."""
        _, pipeline_smooth, rec_smooth = make_rig(smooth=True)
        for _ in range(10):
            pipeline_smooth.wheel()
            pipeline_smooth.window.clock.advance(80)
        m = scroll_metrics(rec_smooth.scroll_events(), rec_smooth.wheel_ticks())
        assert m.median_scroll_step_px < 57.0
