"""HLISA_ActionChains: the Table 3 API and its humanised behaviours."""

import inspect

import numpy as np
import pytest

from repro.analysis.trajectory import trajectory_metrics
from repro.analysis.typing_metrics import typing_metrics
from repro.core import patching
from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.geometry import Box
from repro.webdriver import actions
from repro.webdriver.action_chains import ActionChains
from repro.webdriver.driver import make_browser_driver


@pytest.fixture
def rig():
    driver = make_browser_driver(page_height=6000)
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    return driver, recorder


#: Table 3's API surface: function -> required argument names.
TABLE3_API = {
    "perform": [],
    "reset_actions": [],
    "pause": ["duration"],
    "move_to": ["x", "y"],
    "move_by_offset": ["x", "y"],
    "move_to_element": ["element"],
    "move_to_element_with_offset": ["element", "x", "y"],
    "move_to_element_outside_viewport": ["element"],
    "click": ["element"],
    "click_and_hold": ["element"],
    "release": ["element"],
    "double_click": ["element"],
    "send_keys": ["keys"],
    "send_keys_to_element": ["element", "keys"],
    "scroll_by": ["x", "y"],
    "scroll_to": ["x", "y"],
    "context_click": ["element"],
    "drag_and_drop": ["element1", "element2"],
    "drag_and_drop_by_offset": ["element", "x", "y"],
}


class TestAPISurface:
    def test_table3_functions_exist_with_signatures(self, rig):
        driver, _ = rig
        chain = HLISA_ActionChains(driver)
        for name, arg_names in TABLE3_API.items():
            method = getattr(chain, name, None)
            assert method is not None, f"Table 3 function missing: {name}"
            parameters = list(inspect.signature(method).parameters)
            for arg in arg_names:
                assert arg in parameters, f"{name} lacks argument {arg!r}"

    def test_selenium_parity(self, rig):
        """Every Selenium ActionChains public call exists on HLISA."""
        driver, _ = rig
        selenium_api = {
            n
            for n in dir(ActionChains(driver))
            if not n.startswith("_") and callable(getattr(ActionChains(driver), n))
        }
        selenium_api -= {"move_to_location", "scroll_to_location"}  # internal helpers
        hlisa = HLISA_ActionChains(driver)
        for name in selenium_api:
            assert hasattr(hlisa, name), f"missing Selenium call {name}"

    def test_two_line_integration(self, rig):
        """The paper's Listing 2, verbatim shape."""
        driver, _ = rig
        ac = HLISA_ActionChains(driver)
        element = driver.find_element_by_id("text_area")
        ac.move_to_element(element)
        ac.send_keys_to_element(element, "Text..")
        ac.perform()
        assert element.get_attribute("value") == "Text.."


class TestPatching:
    def test_constructing_hlisa_applies_patch(self, rig):
        driver, _ = rig
        patching.unpatch_pointer_move_duration()
        HLISA_ActionChains(driver)
        assert patching.current_min_duration_ms() == 50.0

    def test_patched_factory_allows_short_moves(self, rig):
        HLISA_ActionChains(rig[0])  # applies patch
        move = actions.create_pointer_move(5, 5, duration_ms=50.0)
        assert move.duration_ms == 50.0

    def test_unpatch_restores_bound(self, rig):
        HLISA_ActionChains(rig[0])
        patching.unpatch_pointer_move_duration()
        move = actions.create_pointer_move(5, 5, duration_ms=50.0)
        assert move.duration_ms == actions.MIN_POINTER_MOVE_DURATION_MS


class TestMovement:
    def test_move_is_curved_and_eased(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=3)
        chain.move_to(1100, 600)
        chain.perform()
        metrics = trajectory_metrics(recorder.mouse_path())
        assert metrics.straightness < 0.999  # curved
        assert metrics.speed_cv > 0.3  # not uniform
        assert metrics.edge_to_middle_speed_ratio < 0.8  # accel/decel

    def test_move_to_element_not_exact_center(self, rig):
        """HLISA moves 'to a position within an element's boundaries',
        not to the centre."""
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        box = element.dom_element.box
        offsets = []
        for seed in range(6):
            HLISA_ActionChains(driver, seed=seed).move_to_element(element).perform()
            last = recorder.mouse_path()[-1]
            center = box.center
            offsets.append(abs(last[1] - center.x) + abs(last[2] - center.y))
        assert max(offsets) > 1.0  # at least some distinctly off-centre

    def test_move_to_element_lands_inside(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        for seed in range(8):
            HLISA_ActionChains(driver, seed=seed).move_to_element(element).perform()
            t, x, y = recorder.mouse_path()[-1]
            page = driver.window.client_to_page(
                __import__("repro.geometry", fromlist=["Point"]).Point(x, y)
            )
            assert element.dom_element.box.contains(page)

    def test_move_to_element_outside_viewport_scrolls(self, rig):
        driver, recorder = rig
        deep = driver.window.document.create_element(
            "button", Box(400, 5200, 120, 48), id="deep"
        )
        element = driver.find_element_by_id("deep")
        chain = HLISA_ActionChains(driver, seed=1)
        chain.move_to_element_outside_viewport(element)
        chain.perform()
        assert driver.window.is_in_viewport(deep.center)
        # scrolled with wheel-tick cadence, not one teleport
        scrolls = recorder.scroll_events()
        assert len(scrolls) > 10

    def test_move_by_offset(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=2)
        chain.move_to(200, 200)
        chain.move_by_offset(100, 50)
        chain.perform()
        t, x, y = recorder.mouse_path()[-1]
        assert (x, y) == pytest.approx((300, 250), abs=1.5)


class TestClicks:
    def test_click_has_human_dwell(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=4)
        chain.click(driver.find_element_by_id("submit"))
        chain.perform()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        assert 20.0 <= clicks[0].dwell_ms <= 250.0

    def test_double_click_two_clicks_short_gap(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=4)
        chain.double_click(driver.find_element_by_id("submit"))
        chain.perform()
        assert len(recorder.clicks()) == 2
        assert len(recorder.of_type("dblclick")) == 1

    def test_context_click_right_button(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=4)
        chain.context_click(driver.find_element_by_id("submit"))
        chain.perform()
        assert len(recorder.of_type("contextmenu")) == 1

    def test_click_and_hold_then_release(self, rig):
        driver, recorder = rig
        element = driver.find_element_by_id("submit")
        chain = HLISA_ActionChains(driver, seed=4)
        chain.click_and_hold(element)
        chain.pause(0.3)
        chain.release()
        chain.perform()
        clicks = recorder.clicks()
        assert len(clicks) == 1
        assert clicks[0].dwell_ms >= 295.0

    def test_drag_and_drop(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=4)
        chain.drag_and_drop(
            driver.find_element_by_id("submit"), driver.find_element_by_id("cancel")
        )
        chain.perform()
        downs = recorder.of_type("mousedown")
        ups = recorder.of_type("mouseup")
        assert len(downs) == 1 and len(ups) == 1


class TestTyping:
    def test_send_keys_human_rhythm(self, rig):
        driver, recorder = rig
        area = driver.find_element_by_id("text_area")
        chain = HLISA_ActionChains(driver, seed=5)
        chain.send_keys_to_element(area, "Hello world, again. Done!")
        chain.perform()
        metrics = typing_metrics(recorder.key_strokes())
        assert metrics.chars_per_minute < 900
        assert metrics.dwell_mean_ms > 30
        assert metrics.dwell_std_ms > 5
        assert metrics.shifted_without_modifier == 0
        assert metrics.shifted_with_modifier >= 2  # H, D, !

    def test_text_arrives_correctly(self, rig):
        driver, _ = rig
        area = driver.find_element_by_id("text_area")
        chain = HLISA_ActionChains(driver, seed=5)
        chain.send_keys_to_element(area, "MiXeD, case?")
        chain.perform()
        assert area.get_attribute("value") == "MiXeD, case?"


class TestScrolling:
    def test_scroll_by_wheel_tick_cadence(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=6)
        chain.scroll_by(0, 1500)
        chain.perform()
        scrolls = recorder.scroll_events()
        assert len(scrolls) >= 20  # ~57 px per event
        offsets = [e.page_y for e in scrolls]
        steps = np.abs(np.diff([0.0] + offsets))
        assert np.median(steps) == pytest.approx(57.0, abs=1.0)

    def test_scroll_to_absolute(self, rig):
        driver, _ = rig
        chain = HLISA_ActionChains(driver, seed=6)
        chain.scroll_to(0, 2000)
        chain.perform()
        assert driver.window.scroll_y == pytest.approx(2000, abs=60)

    def test_reset_actions_empties_queue(self, rig):
        driver, recorder = rig
        chain = HLISA_ActionChains(driver, seed=6)
        chain.move_to(500, 500)
        assert len(chain) == 1
        chain.reset_actions()
        chain.perform()
        assert recorder.mouse_path() == []

    def test_reproducible_with_seed(self):
        paths = []
        for _ in range(2):
            driver = make_browser_driver()
            recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
            chain = HLISA_ActionChains(driver, seed=42)
            chain.move_to(900, 400)
            chain.perform()
            paths.append(recorder.mouse_path())
        assert paths[0] == paths[1]
