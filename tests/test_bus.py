"""repro.bus: typed events, ordered synchronous dispatch, determinism.

The property tests pin the tentpole's contract (docs/EVENT_BUS.md):
dispatch order is a pure function of registration order, two same-seed
runs publish byte-identical streams, and a supervised crawl with every
watchdog attached stays byte-identical across interrupt/resume.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bus import (
    AttemptFinished,
    AttemptStarted,
    BusEvent,
    EventBus,
    FaultObserved,
    NULL_BUS,
    NullBus,
    OverlayDetected,
    PageStalled,
    Resolvable,
    event_name,
    resolve_or_none,
)
from repro.clock import VirtualClock
from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    PopulationConfig,
    SupervisorConfig,
    generate_population,
)
from repro.faults import FaultPlan
from repro.obs import Tracer


def make_bus(tracer=None):
    return EventBus(VirtualClock(), tracer)


#: (class, constructor) pairs the property tests draw from.  Distinct
#: MRO shapes on purpose: plain notifications, Resolvable subclasses.
EVENT_MAKERS = [
    (AttemptStarted, lambda: AttemptStarted("a.example", 0, 0, 0)),
    (AttemptFinished, lambda: AttemptFinished("a.example", 0, 0, 0, True)),
    (FaultObserved, lambda: FaultObserved("crash", "get", "a.example", 0, 0, True)),
    (OverlayDetected, lambda: OverlayDetected("a.example", "modal")),
    (PageStalled, lambda: PageStalled("a.example", 0, 0)),
]


class TestEventNames:
    def test_camel_to_snake(self):
        assert event_name(AttemptStarted) == "attempt_started"
        assert event_name(OverlayDetected) == "overlay_detected"
        assert event_name(BusEvent) == "bus_event"

    def test_name_property_matches(self):
        event = PageStalled("a.example", 3, 1)
        assert event.name == "page_stalled"


class TestDispatch:
    def test_publish_stamps_clock_time_and_sequence(self):
        bus = make_bus()
        bus.clock.advance(250.0)
        first = bus.publish(AttemptStarted("a.example", 0, 0, 0))
        bus.clock.advance(10.0)
        second = bus.publish(AttemptFinished("a.example", 0, 0, 0, True))
        assert (first.ts_ms, first.seq) == (250.0, 1)
        assert (second.ts_ms, second.seq) == (260.0, 2)
        assert bus.events_published == 2

    def test_handlers_fire_in_registration_order(self):
        bus = make_bus()
        log = []
        bus.subscribe(AttemptStarted, lambda e: log.append("first"))
        bus.subscribe(AttemptStarted, lambda e: log.append("second"))
        bus.subscribe(AttemptStarted, lambda e: log.append("third"))
        bus.publish(AttemptStarted("a.example", 0, 0, 0))
        assert log == ["first", "second", "third"]

    def test_base_class_subscription_sees_subclasses(self):
        bus = make_bus()
        log = []
        bus.subscribe(Resolvable, lambda e: log.append(("resolvable", e.name)))
        bus.subscribe(BusEvent, lambda e: log.append(("any", e.name)))
        bus.subscribe(OverlayDetected, lambda e: log.append(("exact", e.name)))
        bus.publish(OverlayDetected("a.example", "modal"))
        bus.publish(AttemptStarted("a.example", 0, 0, 0))
        assert log == [
            ("resolvable", "overlay_detected"),
            ("any", "overlay_detected"),
            ("exact", "overlay_detected"),
            ("any", "attempt_started"),
        ]

    def test_mro_match_keeps_global_registration_order(self):
        # A base-class handler registered *after* an exact-class handler
        # still runs after it: order is global, not per-MRO-level.
        bus = make_bus()
        log = []
        bus.subscribe(OverlayDetected, lambda e: log.append("exact"))
        bus.subscribe(BusEvent, lambda e: log.append("base"))
        bus.subscribe(OverlayDetected, lambda e: log.append("exact-late"))
        bus.publish(OverlayDetected("a.example", "modal"))
        assert log == ["exact", "base", "exact-late"]

    def test_nested_publish_dispatches_depth_first(self):
        bus = make_bus()
        log = []

        def chain(event):
            log.append("outer-start")
            bus.publish(AttemptFinished("a.example", 0, 0, 0, True))
            log.append("outer-end")

        bus.subscribe(AttemptStarted, chain)
        bus.subscribe(AttemptFinished, lambda e: log.append("inner"))
        bus.publish(AttemptStarted("a.example", 0, 0, 0))
        assert log == ["outer-start", "inner", "outer-end"]

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        bus = make_bus()
        log = []
        token = bus.subscribe(AttemptStarted, lambda e: log.append("gone"))
        bus.subscribe(AttemptStarted, lambda e: log.append("kept"))
        bus.unsubscribe(token)
        bus.unsubscribe(token)  # no-op
        bus.publish(AttemptStarted("a.example", 0, 0, 0))
        assert log == ["kept"]

    def test_subscribe_rejects_non_event_types(self):
        bus = make_bus()
        with pytest.raises(TypeError):
            bus.subscribe(dict, lambda e: None)

    def test_handler_exceptions_propagate_untouched(self):
        bus = make_bus()

        class WatchdogBug(ValueError):
            pass

        def bad_handler(event):
            raise WatchdogBug("handler exploded")

        reached = []
        bus.subscribe(AttemptStarted, bad_handler)
        bus.subscribe(AttemptStarted, lambda e: reached.append(True))
        with pytest.raises(WatchdogBug):
            bus.publish(AttemptStarted("a.example", 0, 0, 0))
        # The publish aborted: later handlers never ran.
        assert reached == []

    def test_bus_counts_events_through_the_tracer(self):
        tracer = Tracer(VirtualClock())
        bus = EventBus(tracer.clock, tracer)
        span = tracer.start("crawl")
        bus.publish(AttemptStarted("a.example", 0, 0, 0))
        bus.publish(AttemptStarted("b.example", 1, 0, 0))
        bus.publish(OverlayDetected("a.example", "modal"))
        tracer.end(span)
        counters = tracer.metrics.state_dict()["counters"]
        assert counters["bus.events.attempt_started"] == 2
        assert counters["bus.events.overlay_detected"] == 1
        assert [e.name for e in span.events] == [
            "bus.attempt_started",
            "bus.attempt_started",
            "bus.overlay_detected",
        ]


class TestResolvable:
    def test_first_resolver_wins(self):
        event = PageStalled("a.example", 0, 0)
        event.resolve("stall", "aborted")
        event.resolve("other", "ignored")
        assert event.resolved
        assert (event.resolved_by, event.resolution) == ("stall", "aborted")

    def test_unresolved_by_default(self):
        event = OverlayDetected("a.example", "modal")
        assert not event.resolved
        assert event.resolved_by is None


class TestNullBus:
    def test_publish_is_inert_but_returns_the_event(self):
        log = []
        NULL_BUS.subscribe(AttemptStarted, lambda e: log.append(True))
        event = NULL_BUS.publish(AttemptStarted("a.example", 0, 0, 0))
        assert isinstance(event, AttemptStarted)
        assert log == []
        assert NULL_BUS.events_published == 0
        assert NULL_BUS.registry_snapshot() == []

    def test_resolve_or_none_degrades_without_a_bus(self):
        assert resolve_or_none(None, PageStalled("a", 0, 0)) is None
        assert resolve_or_none(NULL_BUS, PageStalled("a", 0, 0)) is None
        assert resolve_or_none(NullBus(), PageStalled("a", 0, 0)) is None

    def test_resolve_or_none_publishes_on_a_live_bus(self):
        bus = make_bus()
        bus.subscribe(PageStalled, lambda e: e.resolve("stall", "aborted"))
        event = resolve_or_none(bus, PageStalled("a", 0, 0))
        assert event is not None and event.resolved


# -- property tests: determinism ------------------------------------------


#: A registration plan: which event class each of up to 8 handlers
#: subscribes to (index into EVENT_MAKERS, -1 = the BusEvent base).
registration_plans = st.lists(
    st.integers(min_value=-1, max_value=len(EVENT_MAKERS) - 1),
    min_size=1,
    max_size=8,
)

#: A publish plan: which events get published, in order.
publish_plans = st.lists(
    st.integers(min_value=0, max_value=len(EVENT_MAKERS) - 1),
    min_size=1,
    max_size=12,
)


def run_plan(registrations, publishes):
    """Wire a bus from the plans; return (snapshot, dispatch_log)."""
    bus = make_bus()
    log = []
    for handler_index, type_index in enumerate(registrations):
        event_type = (
            BusEvent if type_index < 0 else EVENT_MAKERS[type_index][0]
        )

        def handler(event, _index=handler_index):
            log.append((_index, event.name, event.seq))

        bus.subscribe(event_type, handler, name=f"handler-{handler_index}")
    for type_index in publishes:
        bus.publish(EVENT_MAKERS[type_index][1]())
    return bus.registry_snapshot(), log


class TestBusProperties:
    @settings(max_examples=60, deadline=None)
    @given(registration_plans)
    def test_registry_snapshot_preserves_registration_order(self, plan):
        snapshot, _ = run_plan(plan, [])
        assert [name for _, name in snapshot] == [
            f"handler-{i}" for i in range(len(plan))
        ]

    @settings(max_examples=60, deadline=None)
    @given(registration_plans, publish_plans)
    def test_same_plan_dispatches_identically(self, registrations, publishes):
        """Same registrations + same publishes -> identical dispatch log,
        twice over (no hidden state, no hash-order dependence)."""
        first = run_plan(registrations, publishes)
        second = run_plan(registrations, publishes)
        assert first == second

    @settings(max_examples=60, deadline=None)
    @given(registration_plans, publish_plans)
    def test_within_one_event_handlers_run_in_registration_order(
        self, registrations, publishes
    ):
        _, log = run_plan(registrations, publishes)
        for seq in {entry[2] for entry in log}:
            indices = [entry[0] for entry in log if entry[2] == seq]
            assert indices == sorted(indices)

    @settings(max_examples=60, deadline=None)
    @given(registration_plans, publish_plans)
    def test_every_publish_reaches_exactly_the_matching_handlers(
        self, registrations, publishes
    ):
        _, log = run_plan(registrations, publishes)
        for seq, type_index in enumerate(publishes, start=1):
            event_type = EVENT_MAKERS[type_index][0]
            expected = [
                i
                for i, registered in enumerate(registrations)
                if registered < 0
                or issubclass(event_type, EVENT_MAKERS[registered][0])
            ]
            assert [e[0] for e in log if e[2] == seq] == expected


# -- property test: supervised-crawl resume byte-identity ------------------


def hostile_tiny(n=12, seed=11):
    """A small population with every hostile archetype represented."""
    return generate_population(
        PopulationConfig(
            n_sites=n,
            seed=seed,
            n_no_ads_detectors=0,
            n_less_ads_detectors=0,
            n_block_detectors=1,
            n_captcha_detectors=0,
            n_freeze_video_detectors=0,
            n_other_signal_ad_detectors=0,
            n_side_effect_blockers=0,
            n_http_only_detectors=1,
            n_modal_overlay_sites=1,
            n_challenge_sites=1,
            n_hidden_input_sites=1,
            n_stalling_sites=2,
        )
    )


def supervised(population, seed=7):
    crawler = OpenWPMCrawler("bus", instances=2, seed=seed)
    plan = FaultPlan.generate(population, 2, rate=0.25, seed=5)
    return CrawlSupervisor(crawler, config=SupervisorConfig(), plan=plan)


class TestSupervisedResumeIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        cut=st.integers(min_value=1, max_value=11),
        seed_offset=st.integers(min_value=0, max_value=3),
    )
    def test_interrupted_resume_is_byte_identical(
        self, tmp_path_factory, cut, seed_offset
    ):
        """Any interrupt boundary, any seed: the resumed trace equals the
        uninterrupted one byte for byte, with all watchdogs attached and
        hostile archetypes in the population."""
        tmp_path = tmp_path_factory.mktemp("bus-resume")
        population = hostile_tiny(seed=11 + seed_offset)
        supervised(population, seed=7 + seed_offset).crawl(
            population, trace_path=tmp_path / "full.jsonl"
        )
        checkpoint = tmp_path / "ck.json"
        supervised(population, seed=7 + seed_offset).crawl(
            population[:cut], checkpoint_path=checkpoint
        )
        resumed = supervised(population, seed=7 + seed_offset)
        resumed.crawl(
            population,
            checkpoint_path=checkpoint,
            trace_path=tmp_path / "resumed.jsonl",
        )
        assert (
            (tmp_path / "resumed.jsonl").read_bytes()
            == (tmp_path / "full.jsonl").read_bytes()
        )

    def test_watchdog_metrics_survive_resume(self, tmp_path):
        population = hostile_tiny()
        full = supervised(population)
        full.crawl(population)
        checkpoint = tmp_path / "ck.json"
        supervised(population).crawl(population[:6], checkpoint_path=checkpoint)
        resumed = supervised(population)
        resumed.crawl(population, checkpoint_path=checkpoint)
        assert resumed.metrics.state_dict() == full.metrics.state_dict()
        counters = full.metrics.state_dict()["counters"]
        assert any(k.startswith("bus.events.") for k in counters)
