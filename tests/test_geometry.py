"""Geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Box, Point, lerp, lerp_point, path_length

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(12.5, -7.25)
        assert p.distance_to(p) == 0.0

    def test_offset(self):
        assert Point(1, 2).offset(3, -1) == Point(4, 1)

    def test_round(self):
        assert Point(1.4, 2.6).round() == Point(1.0, 3.0)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestBox:
    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Box(0, 0, -1, 5)
        with pytest.raises(ValueError):
            Box(0, 0, 5, -1)

    def test_edges(self):
        box = Box(10, 20, 30, 40)
        assert box.left == 10
        assert box.top == 20
        assert box.right == 40
        assert box.bottom == 60
        assert box.area == 1200

    def test_center(self):
        assert Box(0, 0, 10, 20).center == Point(5, 10)

    def test_contains_edges_inclusive(self):
        box = Box(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.01, 10))

    def test_clamp_inside_is_identity(self):
        box = Box(0, 0, 10, 10)
        assert box.clamp(Point(3, 7)) == Point(3, 7)

    def test_clamp_projects_outside_points(self):
        box = Box(0, 0, 10, 10)
        assert box.clamp(Point(-5, 15)) == Point(0, 10)

    def test_intersects(self):
        a = Box(0, 0, 10, 10)
        assert a.intersects(Box(5, 5, 10, 10))
        assert a.intersects(Box(10, 10, 5, 5))  # edge contact counts
        assert not a.intersects(Box(11, 11, 5, 5))

    def test_translated(self):
        assert Box(1, 2, 3, 4).translated(10, -2) == Box(11, 0, 3, 4)

    @given(finite, finite, positive, positive, finite, finite)
    def test_clamped_point_is_inside(self, x, y, w, h, px, py):
        box = Box(x, y, w, h)
        clamped = box.clamp(Point(px, py))
        assert box.contains(clamped)


class TestInterpolation:
    def test_lerp_endpoints(self):
        assert lerp(2.0, 10.0, 0.0) == 2.0
        assert lerp(2.0, 10.0, 1.0) == 10.0

    def test_lerp_midpoint(self):
        assert lerp(0.0, 10.0, 0.5) == 5.0

    def test_lerp_point(self):
        mid = lerp_point(Point(0, 0), Point(10, 20), 0.5)
        assert mid == Point(5, 10)

    def test_path_length_of_polyline(self):
        points = [Point(0, 0), Point(3, 4), Point(3, 10)]
        assert path_length(points) == pytest.approx(11.0)

    def test_path_length_single_point(self):
        assert path_length([Point(1, 1)]) == 0.0
