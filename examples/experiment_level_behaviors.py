#!/usr/bin/env python3
"""Appendix F in practice: experiment-level humanisation.

The paper deliberately keeps some behaviours *out* of HLISA because they
could interfere with a study's purpose: warming the cursor off (0,0),
spontaneous movements, misclicks, typing errors.  This script shows a
study that layers them on top of HLISA -- and what each one changes in
the recorded interaction.
"""

import numpy as np

from repro.behaviors import (
    OriginStartDetector,
    SpontaneousMovements,
    TypoGenerator,
    misclick_then_correct,
    warm_up_cursor,
)
from repro.core.hlisa_action_chains import HLISA_ActionChains
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS
from repro.webdriver.driver import make_browser_driver


def main() -> None:
    rng = np.random.default_rng(2021)
    driver = make_browser_driver()

    # 1. Warm-up BEFORE the page can observe anything (Appendix F).
    target = warm_up_cursor(driver, rng)
    print(f"warm-up moved the cursor to ({target.x:.0f}, {target.y:.0f})")

    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)
    chain = HLISA_ActionChains(driver, seed=7)

    # 2. Ordinary HLISA interaction, interleaved with idle wandering.
    wander = SpontaneousMovements(driver, probability=1.0, seed=3)
    chain.click(driver.find_element_by_id("home_link"))
    chain.perform()
    wander.maybe_wander()

    # 3. A misclick next to the button, then the real click.
    misclick_then_correct(driver, driver.find_element_by_id("submit"), rng)
    print(f"clicks so far (incl. one miss): {len(recorder.clicks())}")

    # 4. Typing with errors and corrections.
    typos = TypoGenerator(error_rate=0.08, seed=5)
    text = "please remember to correct the typos in this sentence"
    sequence = typos.keystrokes(text)
    corrections = typos.error_count(sequence)
    area = driver.find_element_by_id("text_area")
    chain.click(area)
    from repro.webdriver.keys import Keys

    wire = "".join(Keys.BACKSPACE if t == "Backspace" else t for t in sequence)
    chain.send_keys(wire)
    chain.perform()
    print(f"typed with {corrections} correction(s); final value matches:",
          area.get_attribute("value") == text)

    # 5. The origin detector would have caught a session without warm-up.
    verdict = OriginStartDetector().observe(recorder)
    print("origin-start detector verdict:", "BOT" if verdict.is_bot else "pass")


if __name__ == "__main__":
    main()
