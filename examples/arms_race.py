#!/usr/bin/env python3
"""Reproduce Fig. 3: play the interaction arms race as a tournament.

Five simulator levels (Selenium, naive, HLISA, a consistency-complete
simulator, a specific-profile impersonator) each perform a browsing
scenario; detector batteries at four escalation levels judge the
recordings.  The genuine human runs as the false-positive control.
"""

from repro.armsrace import EXPECTED_MATRIX_NOTE, Tournament
from repro.armsrace.levels import SimulatorLevel
from repro.detection.base import DetectionLevel


def main() -> None:
    print("running the simulator-vs-detector tournament ...\n")
    result = Tournament().run()
    print(result.format_matrix())
    print()
    print(EXPECTED_MATRIX_NOTE)
    print()
    if result.matches_model():
        print("empirical matrix MATCHES the Fig. 3 model exactly.")
    else:
        print("deviations from the model:")
        for mismatch in result.mismatches():
            print("  -", mismatch)

    print("\nwhat fires against HLISA, per detector level:")
    for level in DetectionLevel:
        evidence = result.evidence[(SimulatorLevel.HUMAN_DISTRIBUTION, level)]
        print(f"  level {int(level)}: {', '.join(evidence) or '(nothing)'}")

    print(
        "\npaper, Section 4.2: 'Thus, consistently defeating HLISA requires "
        "tracking consistency of behaviour.'"
    )


if __name__ == "__main__":
    main()
