#!/usr/bin/env python3
"""Reproduce Figs. 1 and 2: Selenium vs human vs naive vs HLISA.

Runs the paper's pointing and clicking experiments (Appendix E) with all
four subjects and prints the trajectory and click-distribution
signatures, plus ASCII renderings of one trajectory and the click cloud
per agent.
"""

import numpy as np

from repro.analysis import click_metrics
from repro.analysis.trajectory import per_movement_metrics, split_movements
from repro.experiment import MovingClickTask, PointingTask, STANDARD_AGENTS

PANELS = [("selenium", "A"), ("human", "B"), ("naive", "C"), ("hlisa", "D")]


def ascii_trajectory(path, width=68, height=12) -> str:
    """Render a cursor path as ASCII art."""
    xs = [x for _, x, y in path]
    ys = [y for _, x, y in path]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for _, x, y in path:
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        grid[row][col] = "*"
    return "\n".join("".join(row) for row in grid)


def ascii_clicks(offsets, size=17) -> str:
    """Render normalised click offsets over the element as ASCII art."""
    grid = [["."] * size for _ in range(size)]
    center = size // 2
    grid[center][center] = "+"
    for nx, ny in offsets:
        col = int(round((nx + 1) / 2 * (size - 1)))
        row = int(round((ny + 1) / 2 * (size - 1)))
        if 0 <= row < size and 0 <= col < size:
            grid[row][col] = "o"
    return "\n".join(" ".join(row) for row in grid)


def main() -> None:
    print("=" * 72)
    print("Figure 1: cursor trajectories")
    print("=" * 72)
    for name, panel in PANELS:
        result = PointingTask(repetitions=2).run(STANDARD_AGENTS[name]())
        path = result.recorder.mouse_path()
        movements = [
            m for m in per_movement_metrics(path) if m.chord_length > 300
        ]
        stats = (
            f"straightness {np.mean([m.straightness for m in movements]):.3f}  "
            f"speed CV {np.mean([m.speed_cv for m in movements]):.2f}  "
            f"jitter {np.mean([m.jitter_rms_px for m in movements]):.2f} px  "
            f"mean speed {np.mean([m.mean_speed_px_s for m in movements]):.0f} px/s"
        )
        print(f"\n({panel}) {name}: {stats}")
        longest = max(split_movements(path), key=len)
        print(ascii_trajectory(longest))

    print()
    print("=" * 72)
    print("Figure 2: click distributions (100 clicks on a moving element)")
    print("=" * 72)
    for name, panel in PANELS:
        result = MovingClickTask(clicks=100).run(STANDARD_AGENTS[name]())
        clicks = result.recorder.clicks()
        metrics = click_metrics(
            [c.position for c in clicks], [c.target_box for c in clicks]
        )
        print(
            f"\n({panel}) {name}: exact-centre {metrics.exact_center_rate:.0%}, "
            f"mean offset {metrics.mean_radial_offset:.2f}, "
            f"corner rate {metrics.corner_rate:.1%}"
        )
        from repro.analysis.clicks import normalised_offsets

        offsets = normalised_offsets(
            [c.position for c in clicks], [c.target_box for c in clicks]
        )
        print(ascii_clicks(offsets))


if __name__ == "__main__":
    main()
