#!/usr/bin/env python3
"""Reproduce the Section 3.2 field study: Table 2 and Fig. 4.

Crawls the synthetic 1,000-site population twice -- stock OpenWPM and
OpenWPM with the webdriver-spoofing extension -- then prints the
screenshot evaluation, the breakage report, and the HTTP status-code
comparison with the Wilcoxon significance test.

With a non-zero fault rate, both crawls run under the resilient
supervisor against a deterministic fault plan (page-load timeouts,
driver crashes/hangs, stale elements, network resets, OOM restarts) and
a crawl-health report shows the recovery accounting -- demonstrating
that retried/recycled crawls keep the paper's statistics intact.

With a trace directory, each supervised crawl exports its deterministic
JSONL trace there; inspect one with ``python -m repro.obs report``.
With ``--ledger`` each crawl additionally records the probe ledger and
exports ``<name>.ledger.jsonl`` next to its trace -- feed the pair to
``python -m repro.obs attribute`` to see which JS-object accesses
betrayed the spoof.

Usage: python examples/field_study.py [n_sites] [fault_rate] [trace_dir]
                                      [--ledger]
"""

import sys
from pathlib import Path

from repro.crawl import (
    CrawlSupervisor,
    OpenWPMCrawler,
    PopulationConfig,
    evaluate_breakage,
    evaluate_crawl_health,
    evaluate_http_errors,
    evaluate_screenshots,
    generate_population,
    visit_coverage,
)
from repro.faults import FaultPlan
from repro.obs.probes import ProbeLedger
from repro.spoofing import SpoofingExtension


def main(
    n_sites: int = 1000,
    fault_rate: float = 0.0,
    trace_dir: str | None = None,
    ledger: bool = False,
) -> None:
    if ledger and trace_dir is None:
        raise SystemExit(
            "--ledger needs a trace_dir: the ledger is exported next to "
            "the trace"
        )
    if n_sites == 1000:
        population = generate_population()
    else:
        scale = n_sites / 1000.0
        population = generate_population(
            PopulationConfig(
                n_sites=n_sites,
                n_no_ads_detectors=max(1, round(4 * scale)),
                n_less_ads_detectors=max(1, round(2 * scale)),
                n_block_detectors=max(1, round(5 * scale)),
                n_captcha_detectors=max(1, round(3 * scale)),
                n_freeze_video_detectors=1,
                n_other_signal_ad_detectors=1,
                n_side_effect_blockers=1,
                n_http_only_detectors=max(2, round(25 * scale)),
            )
        )
    base_crawler = OpenWPMCrawler("OpenWPM", extension=None, instances=8, seed=11)
    ext_crawler = OpenWPMCrawler(
        "OpenWPM+extension", extension=SpoofingExtension(), instances=8, seed=22
    )
    if fault_rate > 0 or ledger:
        print(
            f"crawling {len(population)} sites x 8 instances, twice, "
            f"supervised at {fault_rate:.1%} injected faults"
            f"{' with probe ledgers' if ledger else ''} ..."
        )
        supervisors = [
            CrawlSupervisor(
                crawler,
                plan=FaultPlan.generate(
                    population, crawler.instances, rate=fault_rate, seed=crawler.seed
                ),
                probe_ledger=ProbeLedger() if ledger else None,
            )
            for crawler in (base_crawler, ext_crawler)
        ]
        trace_paths = [None, None]
        ledger_paths = [None, None]
        if trace_dir is not None:
            out = Path(trace_dir)
            out.mkdir(parents=True, exist_ok=True)
            trace_paths = [
                out / f"{s.crawler.name.replace('+', '-')}.trace.jsonl"
                for s in supervisors
            ]
            if ledger:
                ledger_paths = [
                    out / f"{s.crawler.name.replace('+', '-')}.ledger.jsonl"
                    for s in supervisors
                ]
        baseline, extended = (
            s.crawl(population, trace_path=path, ledger_path=ledger_path)
            for s, path, ledger_path in zip(
                supervisors, trace_paths, ledger_paths
            )
        )
        if fault_rate > 0:
            print("\ncrawl health (crawler failure kept out of the site statistics)")
            for supervisor, result in zip(supervisors, (baseline, extended)):
                health = evaluate_crawl_health(result, supervisor.stats)
                coverage = visit_coverage(
                    result, population, supervisor.crawler.instances
                )
                print(
                    f"  {health.crawler_name:18s} coverage {coverage:6.1%}  "
                    f"recovered {health.recovered_visits:3d}  "
                    f"recycles {health.recycles:3d}  "
                    f"breaker skips {health.breaker_skips:3d}"
                )
                for label, count in health.rows():
                    if label.startswith("- "):
                        print(f"      {label} {count}")
        if trace_dir is not None:
            for path in trace_paths:
                print(f"  trace -> {path}  (python -m repro.obs report {path})")
            if ledger:
                for path in ledger_paths:
                    print(f"  ledger -> {path}")
                print(
                    f"  attribute spoofing side effects: python -m repro.obs "
                    f"attribute {ledger_paths[1]} {ledger_paths[0]}"
                )
    else:
        print(f"crawling {len(population)} sites x 8 instances, twice ...")
        baseline = base_crawler.crawl(population)
        extended = ext_crawler.crawl(population)

    base_eval = evaluate_screenshots(baseline)
    ext_eval = evaluate_screenshots(extended)
    print("\nTable 2: results from the screenshot evaluation")
    print(f"{'Response':26s} {'(1)sites':>9s} {'(2)sites':>9s} {'(1)visits':>10s} {'(2)visits':>10s}")
    for (label, s1, v1), (_, s2, v2) in zip(base_eval.rows(), ext_eval.rows()):
        print(f"{label:26s} {s1:9d} {s2:9d} {v1:10d} {v2:10d}")

    breakage = evaluate_breakage(baseline, extended)
    print(
        f"\nwebsite breakage under the extension: "
        f"{len(breakage.deformed_layout_sites)} deformed layout, "
        f"{len(breakage.frozen_video_sites)} ever-loading video"
    )

    http = evaluate_http_errors(baseline, extended)
    print("\nFigure 4: HTTP responses by status code (>100 occurrences)")
    print(f"{'status':>7s} {'OpenWPM':>9s} {'+ext':>9s}")
    for status, base, ext in http.rows(min_occurrences=100):
        print(f"{status:7d} {base:9d} {ext:9d}")
    fp = http.first_party_wilcoxon
    print(
        f"\nfirst-party errors {http.baseline_first_party_errors} -> "
        f"{http.extended_first_party_errors}; Wilcoxon matched-pairs "
        f"signed-rank p = {fp.p_value:.4f} "
        f"({'significant' if fp.significant() else 'not significant'} at 95%)"
    )
    tp = http.third_party_wilcoxon
    print(
        f"third-party errors: Wilcoxon p = {tp.p_value:.3f} "
        f"({'significant' if tp.significant() else 'not significant'})"
    )


if __name__ == "__main__":
    argv = [arg for arg in sys.argv[1:] if arg != "--ledger"]
    main(
        int(argv[0]) if len(argv) > 0 else 1000,
        float(argv[1]) if len(argv) > 1 else 0.0,
        argv[2] if len(argv) > 2 else None,
        ledger="--ledger" in sys.argv[1:],
    )
