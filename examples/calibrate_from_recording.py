#!/usr/bin/env python3
"""The Appendix E workflow: record a human, fit HLISA's parameters.

The paper parametrises HLISA's models "with values found in our
experiment".  This script runs the recording website's tasks against a
human subject, fits the click/typing/scroll model parameters from the
recordings, and verifies that HLISA driven by the fitted parameters
reproduces the subject's observable rhythm.
"""

from repro.analysis import typing_metrics
from repro.experiment import (
    HLISAAgent,
    HumanAgent,
    MovingClickTask,
    ScrollTask,
    TypingTask,
)
from repro.humans.profile import SUBJECT_POOL
from repro.models.calibration import (
    calibrate_click_params,
    calibrate_scroll_params,
    calibrate_typing_params,
)
from repro.models.typing_rhythm import TypingRhythm


def main() -> None:
    subject = SUBJECT_POOL["subject-b"]
    print(f"recording subject: {subject.name}")

    clicking = MovingClickTask(clicks=100).run(HumanAgent(subject))
    typing = TypingTask().run(HumanAgent(subject))
    scrolling = ScrollTask(page_height=30000).run(HumanAgent(subject))

    click_params = calibrate_click_params(clicking.recorder.clicks())
    typing_params = calibrate_typing_params(typing.recorder.key_strokes())
    scroll_params = calibrate_scroll_params(scrolling.recorder)

    print("\nfitted HLISA parameters:")
    print(
        f"  clicks: sigma {click_params.sigma_frac:.2f} of half-extent, "
        f"dwell {click_params.dwell_mean_ms:.0f}±{click_params.dwell_sd_ms:.0f} ms"
    )
    print(
        f"  typing: dwell {typing_params.dwell_mean_ms:.0f}±"
        f"{typing_params.dwell_sd_ms:.0f} ms, flight "
        f"{typing_params.flight_mean_ms:.0f}±{typing_params.flight_sd_ms:.0f} ms"
    )
    print(
        f"  scroll: tick {scroll_params.wheel_tick_px:.0f} px, pause "
        f"{scroll_params.tick_pause_mean_ms:.0f} ms, finger break "
        f"{scroll_params.finger_pause_mean_ms:.0f} ms every "
        f"~{scroll_params.ticks_per_sweep_mean:.0f} ticks"
    )

    # Drive HLISA with the fitted typing parameters and compare.
    agent = HLISAAgent(seed=17)
    original_factory = agent._chain_for

    def chain_with_fitted_params(session):
        chain = original_factory(session)
        chain._typing = TypingRhythm(chain._rng, typing_params)
        return chain

    agent._chain_for = chain_with_fitted_params
    replay = TypingTask().run(agent)

    human_m = typing_metrics(typing.recorder.key_strokes())
    hlisa_m = typing_metrics(replay.recorder.key_strokes())
    print("\nsubject vs calibrated HLISA (typing):")
    print(f"  {'':14s} {'human':>9s} {'HLISA':>9s}")
    print(f"  {'cpm':14s} {human_m.chars_per_minute:9.0f} {hlisa_m.chars_per_minute:9.0f}")
    print(f"  {'dwell (ms)':14s} {human_m.dwell_mean_ms:9.0f} {hlisa_m.dwell_mean_ms:9.0f}")
    print(f"  {'flight (ms)':14s} {human_m.flight_mean_ms:9.0f} {hlisa_m.flight_mean_ms:9.0f}")


if __name__ == "__main__":
    main()
