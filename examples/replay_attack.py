#!/usr/bin/env python3
"""The replay attack, and why "perfect replayability" loses (Section 4.2).

Records one genuine human visit to a form page, replays it three times
as a bot, and shows both sides of the escalation: within-session
detectors (levels 1-3) pass every replay -- the data is human -- while a
detector with cross-visit memory flags every repeat.
"""

from repro.detection import (
    CrossSessionReplayDetector,
    DetectorBattery,
    DetectionLevel,
)
from repro.detection.replay import signature_similarity, timing_signature
from repro.experiment import HumanAgent, Session
from repro.experiment.replay import ReplayAgent, serialize_recording
from repro.geometry import Box
from repro.humans.profile import HumanProfile


def build_page(session: Session):
    document = session.document
    return [
        document.create_element("a", Box(90, 60, 160, 26), id="nav"),
        document.create_element("button", Box(1050, 120, 140, 44), id="search"),
        document.create_element("button", Box(540, 620, 160, 48), id="submit"),
        document.create_element("input", Box(420, 300, 420, 36), id="email"),
    ]


def main() -> None:
    # 1. A genuine human fills the form; the session is recorded.
    session = Session(automated=False, page_height=4000)
    elements = build_page(session)
    human = HumanAgent(HumanProfile(seed=77))
    for _ in range(5):
        for element in elements[:3]:
            human.click_element(session, element)
            session.clock.advance(350.0)
    human.type_text(session, elements[3], "visitor@example.org")
    source = session.recorder
    dataset = serialize_recording(source)
    print(f"recorded a human visit: {len(source.events)} events, "
          f"{len(dataset) // 1024} KiB serialised")

    # 2. A bot replays the recording, three visits in a row.
    battery = DetectorBattery(DetectionLevel.CONSISTENCY)
    memory = CrossSessionReplayDetector()
    print(f"\n{'visit':10s} {'within-session':>15s} {'cross-session':>14s} {'similarity':>11s}")
    for visit in range(1, 4):
        replay_session = Session(automated=True, page_height=4000)
        build_page(replay_session)
        ReplayAgent(source).run(replay_session)
        recorder = replay_session.recorder
        similarity = signature_similarity(
            timing_signature(source), timing_signature(recorder)
        )
        within = battery.evaluate(recorder).is_bot
        cross = memory.observe(recorder).is_bot
        print(
            f"replay #{visit:2d} {'BOT' if within else 'pass':>15s} "
            f"{'BOT' if cross else 'pass':>14s} {similarity:>10.0%}"
        )

    print(
        "\nthe paper's Section 4.2, in data: simulators that replay must "
        "add 'noise instead of perfect replayability' -- or a detector "
        "with memory wins."
    )


if __name__ == "__main__":
    main()
