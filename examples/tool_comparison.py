#!/usr/bin/env python3
"""Reproduce Table 4 (Appendix G): HLISA vs seven other humanisation
tools, with an extra Selenium reference column.

Every cell is *measured*: each backend runs through the recording
harness and the features are detected from the event streams.
"""

from repro.tools import build_feature_matrix
from repro.tools.matrix import TABLE4_COLUMNS


def main() -> None:
    print("probing 9 backends (this runs ~1000 simulated clicks) ...\n")
    matrix = build_feature_matrix(
        columns=list(TABLE4_COLUMNS) + ["Selenium"], click_attempts=120
    )
    print(matrix.format_table())
    print()
    counts = {c: matrix.feature_count(c) for c in matrix.columns}
    winner = max(counts, key=counts.get)
    print("feature counts:", "  ".join(f"{c}={n}" for c, n in counts.items()))
    print(f"\nbroadest coverage: {winner} ({counts[winner]} features)")


if __name__ == "__main__":
    main()
