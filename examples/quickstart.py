#!/usr/bin/env python3
"""Quickstart: the paper's Listing 2, line for line.

HLISA is a drop-in replacement for Selenium's ActionChains: integrating
it into an existing Selenium project means changing two lines (the import
and the constructor).  This script runs the exact flow of Listing 2
against the simulated browser and shows what a page observing the
interaction would see.
"""

from repro import HLISA_ActionChains, make_browser_driver
from repro.analysis import typing_metrics
from repro.analysis.trajectory import trajectory_metrics
from repro.events.recorder import EventRecorder
from repro.events.taxonomy import ALL_INTERACTION_EVENTS


def main() -> None:
    driver = make_browser_driver()
    # The "website" records every interaction event, as in Appendix E.
    recorder = EventRecorder(ALL_INTERACTION_EVENTS).attach(driver.window)

    # --- Listing 2 -------------------------------------------------------
    # Importing the HLISA library                      (see imports above)
    # Creating an ActionChain with HLISA
    ac = HLISA_ActionChains(driver, seed=2021)
    # Selecting an element
    element = driver.find_element_by_id("text_area")
    # Adding mouse movement and typing with HLISA
    ac.move_to_element(element)
    ac.send_keys_to_element(element, "Text..")
    # Executing a chain
    ac.perform()
    # ----------------------------------------------------------------------

    print("typed value:", element.get_attribute("value"))
    print(f"events observed by the page: {len(recorder.events)}")

    movement = trajectory_metrics(recorder.mouse_path())
    print(
        f"cursor path: {movement.n_samples} samples, "
        f"straightness {movement.straightness:.3f}, "
        f"speed CV {movement.speed_cv:.2f} "
        f"(a straight uniform Selenium line would be 1.000 / ~0.05)"
    )
    typing = typing_metrics(recorder.key_strokes())
    print(
        f"typing: {typing.chars_per_minute:.0f} cpm, key dwell "
        f"{typing.dwell_mean_ms:.0f}±{typing.dwell_std_ms:.0f} ms "
        f"(Selenium: 13,333 cpm at 0 ms dwell)"
    )


if __name__ == "__main__":
    main()
