#!/usr/bin/env python3
"""Reproduce Table 1: the side effects of the four spoofing methods.

Each method hides ``navigator.webdriver`` from a page script; the five
probes of Table 1 (plus a full template attack) then hunt for the
residue.  Also demonstrates Listing 1's ``toString`` probe verbatim.
"""

from repro.browser.navigator import NavigatorProfile
from repro.browser.window import Window
from repro.detection.fingerprint import (
    SideEffect,
    TemplateAttack,
    run_all_probes,
)
from repro.spoofing import SpoofingMethod, apply_spoofing

ROWS = [
    ("Incorrect order of navigator properties", SideEffect.INCORRECT_PROPERTY_ORDER),
    ("Modified navigator._length", SideEffect.MODIFIED_LENGTH),
    ("New Object.keys(navigator)", SideEffect.NEW_OBJECT_KEYS),
    ("Defined navigator.__proto__.webdriver", SideEffect.PROTO_WEBDRIVER_DEFINED),
    ("Unnamed window.navigator functions", SideEffect.UNNAMED_FUNCTIONS),
]


def main() -> None:
    observed = {}
    for method in SpoofingMethod:
        window = Window(profile=NavigatorProfile(webdriver=True))
        before = window.navigator.get("webdriver")
        apply_spoofing(window, method)
        result = run_all_probes(window)
        observed[method.value] = result.side_effects
        print(
            f"method {method.value} ({method.name.lower()}): webdriver "
            f"{before} -> {result.webdriver_value}; "
            f"{len(result.side_effects)} side effect(s)"
        )

    print("\nTable 1: detectable side effects by spoofing method")
    print(f"{'Side effect':44s} 1  2  3  4")
    for label, effect in ROWS:
        cells = "  ".join("x" if effect in observed[m] else "." for m in (1, 2, 3, 4))
        print(f"{label:44s} {cells}")

    # Listing 1: the toString probe against the proxy method.
    window = Window(profile=NavigatorProfile(webdriver=True))
    print("\nListing 1 -- window.navigator.toString.toString():")
    print("regular browser:")
    print("  " + window.navigator.get("toString").to_string().replace("\n", "\n  "))
    apply_spoofing(window, SpoofingMethod.PROXY)
    print("after shadowing via proxy objects:")
    print("  " + window.navigator.get("toString").to_string().replace("\n", "\n  "))

    # A JavaScript-template-attack (Schwarz et al.) finds the structural
    # spoofs automatically.
    print("\ntemplate attack on method 1 (defineProperty):")
    window = Window(profile=NavigatorProfile(webdriver=True))
    apply_spoofing(window, SpoofingMethod.DEFINE_PROPERTY)
    for difference in TemplateAttack().diff(window.navigator):
        print("  -", difference)


if __name__ == "__main__":
    main()
